"""Benchmark the serve subsystem: compile cost vs. demand-query cost.

Measures, per corpus entry:

* **compile** — full solve + ``.ptdb`` write (the once-per-program cost),
* **cold load** — ``PointsToDatabase.load`` (per-process startup cost),
* **solve baseline** — what ``repro query`` without ``--db`` pays per
  question (a fresh end-to-end solve),
* **warm latency** — per-query p50/p95/p99 through the in-process
  engine once caches are warm, and the speedup over the solve baseline,
* **throughput** — queries/sec through a *real server subprocess* at
  1/4/8 concurrent clients, cache-on and cache-off,
* **capacity** — the zero-think-time saturation ceiling (open loop).

The server runs as a subprocess (its own interpreter, so client and
server do not share a GIL) and each client is its own OS process
sending pre-encoded request lines and counting newline-delimited
responses — the measurement is the protocol round trip, not Python
string formatting.

Throughput uses a *closed-loop model with think time* (the standard
TPC/YCSB shape): each client waits ``think_s`` between queries, like an
interactive session.  A single client is then latency-bound, and the
1/4/8-client sweep measures whether the server actually multiplexes
connections — a serial accept-then-serve server would stay flat while a
concurrent one scales ~linearly until it nears the saturation capacity,
which is reported separately (``capacity``, think time zero).  On a
single-core host a zero-think closed loop cannot scale by construction
(one client already saturates the CPU shared by client and server), so
conflating the two numbers would make the sweep meaningless.

Output: ``results/BENCH_serve.json``.  Run as::

    python -m repro.bench.serve_bench --entries freetts --duration 2
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import re
import socket
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from ..serve import PointsToDatabase, QueryEngine, compile_database
from ..serve.metrics import percentile
from ..serve.protocol import encode
from .corpus import corpus_entry

__all__ = ["run_serve_bench", "main"]

_DEFAULT_ENTRIES = ("freetts",)
_DEFAULT_THREADS = (1, 4, 8)
_WARM_QUERIES = 400
_DEFAULT_THINK_S = 0.001


def _sample_queries(db: PointsToDatabase, count: int = 16) -> List[Dict[str, Any]]:
    """A rotating pool of distinct demand queries drawn from the db."""
    queries: List[Dict[str, Any]] = []
    var_specs = sorted(db.var_reps)
    methods = db.maps.get("M", [])
    heaps = db.maps.get("H", [])
    for spec in var_specs[: count // 2]:
        queries.append({"kind": "points-to", "args": {"variable": spec}})
    for name in methods[: count // 4]:
        queries.append({"kind": "callers", "args": {"method": name}})
    for name in heaps[: count // 4]:
        queries.append({"kind": "escape", "args": {"heap": name}})
    return queries or [{"kind": "escape", "args": {"heap": heaps[0]}}]


def _bench_warm_latency(
    engine: QueryEngine, queries: Sequence[Dict[str, Any]], rounds: int
) -> Dict[str, float]:
    # Prime the cache, then measure round-robin over the cached set.
    for q in queries:
        engine.query(q["kind"], q["args"])
    samples: List[float] = []
    for i in range(rounds):
        q = queries[i % len(queries)]
        t0 = time.perf_counter()
        engine.query(q["kind"], q["args"])
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return {
        "queries": rounds,
        "p50_s": percentile(samples, 50),
        "p95_s": percentile(samples, 95),
        "p99_s": percentile(samples, 99),
        "mean_s": sum(samples) / len(samples),
    }


def _bench_batch(
    loaded: PointsToDatabase, count: int = 64
) -> Dict[str, Any]:
    """Batched vs. scalar point queries through the in-process engine.

    The same ``points-to`` lookups are answered two ways on separate
    engines: one ``query`` call per variable (N BDD selects) versus a
    single ``query_batch`` (one joint select, split per variable).
    Cold measures the evaluation path; warm measures the cache path —
    batches fill the same scalar result cache, so both converge.  The
    cell is gated on the two paths returning identical results.
    """
    specs = sorted(loaded.var_reps)[:count]
    subs = [
        {"kind": "points-to", "args": {"variable": spec}} for spec in specs
    ]

    scalar_engine = QueryEngine(loaded, cache_size=4096)
    t0 = time.perf_counter()
    scalar_results = [
        scalar_engine.query(s["kind"], dict(s["args"])) for s in subs
    ]
    scalar_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    for s in subs:
        scalar_engine.query(s["kind"], dict(s["args"]))
    scalar_warm = time.perf_counter() - t0

    batch_engine = QueryEngine(loaded, cache_size=4096)
    t0 = time.perf_counter()
    batch_results = batch_engine.query_batch([dict(s) for s in subs])
    batch_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    batch_engine.query_batch([dict(s) for s in subs])
    batch_warm = time.perf_counter() - t0

    if batch_results != scalar_results:
        raise RuntimeError(
            "batched and scalar answers diverged — timings withheld"
        )
    return {
        "queries": len(subs),
        "scalar_cold_s": round(scalar_cold, 6),
        "batch_cold_s": round(batch_cold, 6),
        "scalar_warm_s": round(scalar_warm, 6),
        "batch_warm_s": round(batch_warm, 6),
        "speedup_batch_vs_scalar_cold": round(
            scalar_cold / batch_cold, 2
        ) if batch_cold > 0 else float("inf"),
        "speedup_batch_vs_scalar_warm": round(
            scalar_warm / batch_warm, 2
        ) if batch_warm > 0 else float("inf"),
        "results_identical": True,
    }


class _ServerProcess:
    """A ``repro serve`` subprocess on an ephemeral port.

    ``extra_args`` extends the serve command line (admission limits,
    retry hints); ``env_extra`` adds environment variables — the chaos
    bench uses it to arm ``REPRO_FAULT`` seams in the child.
    """

    def __init__(
        self,
        db_path: str,
        cache_size: int = 4096,
        *,
        extra_args: Sequence[str] = (),
        env_extra: Optional[Dict[str, str]] = None,
    ) -> None:
        env = dict(os.environ)
        src_root = str(pathlib.Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", db_path, "--port", "0",
                "--cache-size", str(cache_size),
                "--max-connections", "64",
                *extra_args,
            ],
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        assert self.proc.stderr is not None
        line = self.proc.stderr.readline()
        match = re.search(r"on ([\d.]+):(\d+)", line)
        if not match:
            self.proc.kill()
            raise RuntimeError(f"server did not announce a port: {line!r}")
        self.host, self.port = match.group(1), int(match.group(2))
        # Drain stderr in the background so the server never blocks on a
        # full pipe.
        self._drain = threading.Thread(
            target=self.proc.stderr.read, daemon=True
        )
        self._drain.start()

    def stop(self) -> None:
        try:
            with socket.create_connection((self.host, self.port), timeout=5) as s:
                s.sendall(encode({"id": 0, "verb": "shutdown"}))
                s.recv(4096)
        except OSError:
            pass
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)

    def __enter__(self) -> "_ServerProcess":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def _client_worker(host, port, wire_requests, slot, duration, think,
                   barrier, queue):
    """One benchmark client: loop pre-encoded requests, count responses.

    Runs in its *own process* (see :func:`_throughput`) so N clients
    measure the server's concurrency, not the bench process's GIL.
    A non-zero ``think`` sleeps between queries (closed loop with think
    time); zero hammers the server flat out (saturation).
    """
    n = 0
    errors = 0
    try:
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = sock.makefile("rb")
            requests = list(wire_requests[slot % len(wire_requests):]) + \
                list(wire_requests[: slot % len(wire_requests)])
            barrier.wait()
            deadline = time.perf_counter() + duration
            i = 0
            while time.perf_counter() < deadline:
                sock.sendall(requests[i % len(requests)])
                line = reader.readline()
                if not line:
                    break
                if b'"ok":true' in line:
                    n += 1
                else:
                    errors += 1
                i += 1
                if think > 0:
                    time.sleep(think)
    except OSError:
        pass
    queue.put((slot, n, errors))


def _throughput(
    host: str,
    port: int,
    wire_requests: Sequence[bytes],
    clients: int,
    duration: float,
    think: float = 0.0,
) -> Dict[str, float]:
    """Drive the server from ``clients`` concurrent connections.

    Each client is a separate OS process (server and clients already
    don't share a GIL; neither should the clients share one with each
    other), started behind a barrier so the timed window is honest.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(clients + 1)
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_client_worker,
            args=(host, port, list(wire_requests), slot, duration, think,
                  barrier, queue),
            daemon=True,
        )
        for slot in range(clients)
    ]
    for p in procs:
        p.start()
    barrier.wait()
    start = time.perf_counter()
    results = [queue.get(timeout=duration + 60) for _ in procs]
    elapsed = time.perf_counter() - start
    for p in procs:
        p.join(timeout=10)
    total = sum(n for _, n, _ in results)
    return {
        "threads": clients,
        "requests": total,
        "errors": sum(e for _, _, e in results),
        "seconds": round(elapsed, 3),
        "qps": round(total / elapsed, 1) if elapsed > 0 else 0.0,
    }


def _wire_requests(
    queries: Sequence[Dict[str, Any]], no_cache: bool
) -> List[bytes]:
    out = []
    for i, q in enumerate(queries):
        request = {"id": i, "verb": "query", "kind": q["kind"], "args": q["args"]}
        if no_cache:
            request["no_cache"] = True
        out.append(encode(request))
    return out


def bench_entry(
    name: str,
    *,
    threads: Sequence[int] = _DEFAULT_THREADS,
    duration: float = 2.0,
    think: float = _DEFAULT_THINK_S,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    program = corpus_entry(name).build()

    t0 = time.perf_counter()
    db = compile_database(program)
    solve_s = time.perf_counter() - t0

    directory = pathlib.Path(workdir) if workdir else pathlib.Path(".")
    db_path = str(directory / f"{name}.ptdb")
    t0 = time.perf_counter()
    db.save(db_path)
    save_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    loaded = PointsToDatabase.load(db_path)
    cold_load_s = time.perf_counter() - t0

    queries = _sample_queries(loaded)
    engine = QueryEngine(loaded, cache_size=4096)
    warm = _bench_warm_latency(engine, queries, _WARM_QUERIES)
    batch = _bench_batch(loaded)
    # ``repro query`` without --db re-solves the program per question;
    # the compile measurement above is exactly that solve.
    speedup = solve_s / warm["p50_s"] if warm["p50_s"] > 0 else float("inf")

    throughput: Dict[str, Any] = {}
    capacity: Dict[str, Any] = {}
    with _ServerProcess(db_path) as server:
        for mode, no_cache in (("cache_on", False), ("cache_off", True)):
            wire = _wire_requests(queries, no_cache)
            if not no_cache:
                # Prime the server-side cache outside the timed window.
                with socket.create_connection(
                    (server.host, server.port), timeout=10
                ) as sock:
                    reader = sock.makefile("rb")
                    for line in wire:
                        sock.sendall(line)
                        reader.readline()
            throughput[mode] = {
                str(t): _throughput(
                    server.host, server.port, wire, t, duration, think
                )
                for t in threads
            }
            # Saturation ceiling: zero think time, mid-size client pool.
            capacity[mode] = _throughput(
                server.host, server.port, wire, min(4, max(threads)),
                duration, 0.0,
            )

    qps_on = {t: throughput["cache_on"][str(t)]["qps"] for t in threads}
    scaling = (
        qps_on[max(threads)] / qps_on[min(threads)]
        if qps_on[min(threads)] > 0 else 0.0
    )
    return {
        "entry": name,
        "db_id": loaded.db_id,
        "db_bytes": pathlib.Path(db_path).stat().st_size,
        "compile": {"solve_s": round(solve_s, 4), "save_s": round(save_s, 4)},
        "cold_load_s": round(cold_load_s, 4),
        "solve_baseline_s": round(solve_s, 4),
        "warm_latency": {k: round(v, 7) for k, v in warm.items()},
        "speedup_warm_vs_resolve": round(speedup, 1),
        "batch": batch,
        "think_s": think,
        "throughput": throughput,
        "capacity": capacity,
        "scaling_max_vs_min_threads": round(scaling, 2),
    }


def run_serve_bench(
    entries: Sequence[str] = _DEFAULT_ENTRIES,
    *,
    threads: Sequence[int] = _DEFAULT_THREADS,
    duration: float = 2.0,
    think: float = _DEFAULT_THINK_S,
    out: str = "results/BENCH_serve.json",
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    results = {}
    for name in entries:
        print(f"== {name} ==", file=sys.stderr)
        results[name] = bench_entry(
            name, threads=threads, duration=duration, think=think,
            workdir=workdir,
        )
        r = results[name]
        print(
            f"  solve {r['solve_baseline_s']:.2f}s, load "
            f"{r['cold_load_s'] * 1e3:.1f}ms, warm p50 "
            f"{r['warm_latency']['p50_s'] * 1e6:.0f}us "
            f"({r['speedup_warm_vs_resolve']:.0f}x), scaling "
            f"{r['scaling_max_vs_min_threads']:.2f}x, batch "
            f"{r['batch']['speedup_batch_vs_scalar_cold']:.2f}x cold",
            file=sys.stderr,
        )
    report = {
        "benchmark": "serve",
        "threads": list(threads),
        "duration_s": duration,
        "think_s": think,
        "entries": results,
    }
    out_path = pathlib.Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve_bench",
        description="Benchmark the points-to database + query server",
    )
    parser.add_argument(
        "--entries", nargs="+", default=list(_DEFAULT_ENTRIES),
        help="corpus entries to benchmark (default: freetts)",
    )
    parser.add_argument(
        "--threads", nargs="+", type=int, default=list(_DEFAULT_THREADS),
        help="client thread counts (default: 1 4 8)",
    )
    parser.add_argument(
        "--duration", type=float, default=2.0,
        help="seconds per throughput window (default 2)",
    )
    parser.add_argument(
        "--think", type=float, default=_DEFAULT_THINK_S,
        help="client think time between queries in seconds "
             "(default 0.001; 0 = saturation mode)",
    )
    parser.add_argument(
        "--out", default="results/BENCH_serve.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for .ptdb scratch files (default: cwd)",
    )
    args = parser.parse_args(argv)
    run_serve_bench(
        args.entries,
        threads=args.threads,
        duration=args.duration,
        think=args.think,
        out=args.out,
        workdir=args.workdir,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
