"""Differential testing of BddKernel backends (the pluggable-kernel proof).

Every registered backend must be *observationally identical*: same
relations, same tuple counts, same canonical BDD serialization, and —
because the ``.ptdb`` pipeline is backend-agnostic — the same ``db_id``
for a compiled database.  This module runs corpus entries through the
paper's Algorithms 1–7 (context-insensitive variants, context-sensitive
pointer and type analyses, thread-escape) under each backend and
compares structural fingerprints, not just scalar summaries.

The same machinery covers the plan optimizer: a *config* is
``backend[+opt|+noopt]``, and the default matrix crosses both backends
with the optimizer on and off.  The optimizer only rewrites evaluation
plans — never domain encodings or variable orders — so every config must
fingerprint bit-identically.

Usage::

    python -m repro.bench.differential --entries gruntspud --out results
    python -m repro.bench.differential --configs reference+opt,reference+noopt

Exit code 0 means every fingerprint matched; 1 means a divergence was
found (the JSON artifact then pins down which algorithm/relation).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ContextSensitiveTypeAnalysis,
    ThreadEscapeAnalysis,
)
from ..bdd.serialize import dump_bdd_lines
from ..callgraph import cha_call_graph
from ..ir.facts import extract_facts
from .corpus import corpus_entry, corpus_names

__all__ = [
    "relation_fingerprint",
    "backend_fingerprint",
    "parse_config",
    "differential_entry",
    "run_differential",
    "main",
]

DEFAULT_BACKENDS = ("reference", "packed", "arena")

#: Default comparison matrix: all three backends crossed with the plan
#: optimizer on and off.  All six must be bit-identical — the optimized
#: configs additionally exercise the fused superops (``rel_prod_replace``
#: / ``and_exist``), which the arena backend executes natively.
DEFAULT_CONFIGS = (
    "reference+opt",
    "reference+noopt",
    "packed+opt",
    "packed+noopt",
    "arena+opt",
    "arena+noopt",
)


def parse_config(config: str) -> Tuple[str, Optional[bool]]:
    """``backend[+opt|+noopt]`` -> (backend, optimize)."""
    backend, _, suffix = config.partition("+")
    if suffix == "opt":
        return backend, True
    if suffix == "noopt":
        return backend, False
    if suffix:
        raise ValueError(
            f"bad config {config!r}: expected backend, backend+opt "
            f"or backend+noopt"
        )
    return backend, None

#: Relations fingerprinted per algorithm (output relations that exist in
#: every corpus entry's solve).
_ALG_RELATIONS = {
    "alg1": ("vP", "hP"),
    "alg2": ("vP", "hP"),
    "alg3": ("vP", "hP", "IE"),
    "alg5": ("vPC", "hP"),
    "alg6": ("vTC", "fT"),
    "alg7": ("vP",),
}


def relation_fingerprint(solver, name: str) -> Dict[str, Any]:
    """Structural identity of one solved relation.

    The digest hashes the *canonical* serialization (node ids renumbered
    in emission order), so it depends only on the BDD structure under the
    solver's variable order — never on backend handle values.
    """
    rel = solver.relation(name)
    lines, nodes = dump_bdd_lines(solver.manager, [rel.node])
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]
    return {"count": rel.count(), "nodes": nodes, "digest": digest}


def _fingerprint(result, alg: str) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for name in _ALG_RELATIONS[alg]:
        if name in result.solver.relations:
            out[name] = relation_fingerprint(result.solver, name)
    return out


def backend_fingerprint(
    name: str, backend: str, optimize: Optional[bool] = None
) -> Dict[str, Any]:
    """Run Algorithms 1-7 (and the database compile) on one corpus entry
    under one backend and optimizer setting; return every structural
    fingerprint."""
    from ..serve.database import compile_database

    entry = corpus_entry(name)
    facts = extract_facts(entry.build())
    cha = cha_call_graph(facts)
    out: Dict[str, Any] = {"backend": backend, "optimize": optimize}
    t0 = time.monotonic()

    alg1 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=False,
        call_graph=cha, backend=backend, optimize=optimize,
    ).run()
    out["alg1"] = _fingerprint(alg1, "alg1")
    del alg1

    alg2 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=False,
        call_graph=cha, backend=backend, optimize=optimize,
    ).run()
    out["alg2"] = _fingerprint(alg2, "alg2")
    del alg2, cha

    alg3 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=True,
        backend=backend, optimize=optimize,
    ).run()
    out["alg3"] = _fingerprint(alg3, "alg3")
    graph = alg3.discovered_call_graph
    del alg3

    alg5 = ContextSensitiveAnalysis(
        facts=facts, call_graph=graph, backend=backend, optimize=optimize,
    ).run()
    out["alg5"] = _fingerprint(alg5, "alg5")
    # Algorithm 4 is the context numbering itself; its observable is the
    # path count the numbering assigns.
    out["alg4"] = {"paths": alg5.max_paths()}
    del alg5

    alg6 = ContextSensitiveTypeAnalysis(
        facts=facts, call_graph=graph, backend=backend, optimize=optimize,
    ).run()
    out["alg6"] = _fingerprint(alg6, "alg6")
    del alg6

    alg7 = ThreadEscapeAnalysis(
        facts=facts, call_graph=graph, backend=backend, optimize=optimize,
    ).run()
    out["alg7"] = {
        "summary": alg7.summary(),
        "escaped": sorted(alg7.escaped_heaps()),
        "captured": sorted(alg7.captured_heaps()),
    }
    del alg7

    db = compile_database(facts=facts, backend=backend, optimize=optimize)
    out["db_id"] = db.db_id
    out["db_backend"] = db.meta["backend"]
    del db

    out["seconds"] = round(time.monotonic() - t0, 3)
    return out


def _strip_volatile(fp: Dict[str, Any]) -> Dict[str, Any]:
    return {
        k: v
        for k, v in fp.items()
        if k not in ("backend", "optimize", "db_backend", "seconds")
    }


def differential_entry(
    name: str, configs: Sequence[str] = DEFAULT_CONFIGS
) -> Dict[str, Any]:
    """Compare every config's fingerprints for one corpus entry."""
    fps = {
        cfg: backend_fingerprint(name, *parse_config(cfg)) for cfg in configs
    }
    base = _strip_volatile(fps[configs[0]])
    mismatches: List[str] = []
    detail: Dict[str, Any] = {}
    for cfg in configs[1:]:
        other = _strip_volatile(fps[cfg])
        for key in sorted(set(base) | set(other)):
            if base.get(key) != other.get(key):
                mismatches.append(f"{cfg}:{key}")
                # Pin the divergence down to the relation and field so
                # the artifact alone identifies the failing kernel path.
                detail[f"{cfg}:{key}"] = _divergence_detail(
                    base.get(key), other.get(key)
                )
    record = {
        "name": name,
        "backends": fps,
        "identical": not mismatches,
        "mismatches": mismatches,
    }
    if detail:
        record["divergence_detail"] = detail
    return record


def _divergence_detail(base: Any, other: Any) -> Any:
    """The smallest differing sub-structure of two fingerprint values.

    For per-algorithm relation maps this descends to the relation and
    then the field (``count`` / ``nodes`` / ``digest``) that diverged,
    reporting baseline vs. got side by side."""
    if isinstance(base, dict) and isinstance(other, dict):
        out = {}
        for key in sorted(set(base) | set(other)):
            if base.get(key) != other.get(key):
                out[key] = _divergence_detail(base.get(key), other.get(key))
        return out
    return {"baseline": base, "got": other}


def run_differential(
    names: Optional[Sequence[str]] = None,
    configs: Sequence[str] = DEFAULT_CONFIGS,
    verbose: bool = True,
) -> Tuple[List[Dict[str, Any]], bool]:
    """Differential-test the given corpus entries; returns
    ``(records, all_identical)``."""
    if names is None:
        names = corpus_names(small=True)
    records = []
    ok = True
    for name in names:
        record = differential_entry(name, configs)
        records.append(record)
        ok = ok and record["identical"]
        if verbose:
            verdict = "identical" if record["identical"] else (
                "DIVERGED: " + ", ".join(record["mismatches"])
            )
            times = " ".join(
                f"{cfg}={fp['seconds']}s"
                for cfg, fp in record["backends"].items()
            )
            print(f"  [{name}: {verdict} ({times})]", flush=True)
    return records, ok


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--entries", metavar="NAME,NAME",
        help="corpus entries (default: the small subset)",
    )
    parser.add_argument(
        "--configs", default=",".join(DEFAULT_CONFIGS), metavar="A,B",
        help="configs (backend[+opt|+noopt]) to compare "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--backends", metavar="A,B",
        help="shorthand: backends to compare with default optimizer "
        "settings (overrides --configs)",
    )
    parser.add_argument("--out", default="results", help="output directory")
    args = parser.parse_args(argv)
    names = None
    if args.entries:
        names = [n.strip() for n in args.entries.split(",") if n.strip()]
    if args.backends:
        configs = [b.strip() for b in args.backends.split(",") if b.strip()]
    else:
        configs = [c.strip() for c in args.configs.split(",") if c.strip()]
    for cfg in configs:
        parse_config(cfg)  # validate before solving anything
    print(f"Differential: configs {configs}", flush=True)
    records, ok = run_differential(names=names, configs=configs)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    artifact = out / "DIFFERENTIAL.json"
    artifact.write_text(
        json.dumps(
            {"backends": configs, "entries": records, "identical": ok},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"wrote {artifact}")
    print("all backends identical" if ok else "DIVERGENCE FOUND")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
