"""Chaos-bench the serve layer: availability under injected faults.

Where :mod:`repro.bench.serve_bench` measures how *fast* the server is,
this harness measures how *available* it stays when things go wrong.
Each scenario runs a real ``repro serve`` subprocess (faults armed via
``REPRO_FAULT`` in the child's environment — see
:mod:`repro.runtime.faults`) and drives it with circuit-breaker
:class:`~repro.serve.ResilientClient` workers, tallying every call as a
success, an *expected* rejection (``overloaded`` / a deliberate
``deadline_ms=0`` probe), or a failure:

* **baseline** — no faults; the control row.
* **dispatch_faults** — ``exception@serve.dispatch%N``: an intermittent
  ~1/N per-request fault.  Typed ``server-error`` responses, connection
  and server survive.
* **accept_faults** — ``exception@serve.accept%N``: every Nth accepted
  connection is dropped at the seam; clients must reconnect.
* **overload** — tiny ``--max-pending`` under zero-think clients, plus
  ``deadline_ms=0`` probes; ``overloaded``/``deadline-exceeded`` here
  are the server *working correctly* and are excluded from availability.
* **hot_swap** — ``--swaps`` (default 100) ``reload`` round trips
  between two databases while the workers hammer the server mid-flight.
* **crash_restart** — the child SIGABRTs mid-dispatch on its first
  incarnation (``abort@serve.dispatch#K~1``); the
  :class:`~repro.serve.ServeSupervisor` restarts it on the pinned port
  and a fixed workload must complete unattended across the crash.

Availability per scenario (and overall) is
``successes / (attempts - expected_rejections)`` — the serving SLO this
repo's robustness work targets is >= 99% under every fault mix.

Output: ``results/BENCH_chaos.json`` (same entry conventions as
``BENCH_serve.json``).  Run as::

    python -m repro.bench.chaos_bench --duration 3
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import pathlib
import random
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from ..runtime.errors import WorkerCrashed
from ..serve import ResilientClient, ServerError, compile_database
from ..serve.engine import QueryError
from ..serve.metrics import percentile
from ..serve.supervise import ServeSupervisor
from .corpus import corpus_entry
from .generator import generate_program
from .serve_bench import _sample_queries, _ServerProcess

__all__ = ["run_chaos_bench", "main"]

_DEFAULT_ENTRY = "freetts"
_DEFAULT_CLIENTS = 4
_DEFAULT_DURATION = 3.0
_DEFAULT_SWAPS = 100

# Codes that mean "the server correctly refused work", not "the server
# failed".  They are excluded from the availability denominator.
_EXPECTED_REJECTIONS = ("overloaded", "deadline-exceeded")


class _Tally:
    """Thread-safe outcome counters shared by a scenario's workers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.attempts = 0
        self.successes = 0
        self.failures = 0
        self.rejections: Dict[str, int] = {}
        self.failure_codes: Dict[str, int] = {}
        self.latencies: List[float] = []
        self.reconnects = 0
        self.retries = 0
        self.overload_waits = 0

    def success(self, seconds: float) -> None:
        with self._lock:
            self.attempts += 1
            self.successes += 1
            self.latencies.append(seconds)

    def rejected(self, code: str) -> None:
        with self._lock:
            self.attempts += 1
            self.rejections[code] = self.rejections.get(code, 0) + 1

    def failure(self, code: str) -> None:
        with self._lock:
            self.attempts += 1
            self.failures += 1
            self.failure_codes[code] = self.failure_codes.get(code, 0) + 1

    def client_done(self, client: ResilientClient) -> None:
        with self._lock:
            self.reconnects += client.reconnects
            self.retries += client.retries
            self.overload_waits += client.overload_waits

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            rejected = sum(self.rejections.values())
            denominator = self.attempts - rejected
            availability = (
                100.0 * self.successes / denominator
                if denominator > 0 else 100.0
            )
            samples = sorted(self.latencies)
            return {
                "attempts": self.attempts,
                "successes": self.successes,
                "failures": self.failures,
                "failure_codes": dict(self.failure_codes),
                "expected_rejections": dict(self.rejections),
                "availability_pct": round(availability, 3),
                "latency": {
                    "p50_s": round(percentile(samples, 50), 6),
                    "p99_s": round(percentile(samples, 99), 6),
                } if samples else None,
                "client": {
                    "reconnects": self.reconnects,
                    "retries": self.retries,
                    "overload_waits": self.overload_waits,
                },
            }


def _worker(
    host: str,
    port: int,
    queries: Sequence[Dict[str, Any]],
    slot: int,
    stop: threading.Event,
    tally: _Tally,
    *,
    no_cache: bool = False,
    deadline_probe_every: int = 0,
    client_kwargs: Optional[Dict[str, Any]] = None,
) -> None:
    kwargs = dict(
        timeout=10.0,
        max_retries=8,
        backoff_base=0.02,
        backoff_factor=2.0,
        backoff_max=0.25,
        jitter=0.1,
        failure_threshold=64,
        reset_after=0.2,
        rng=random.Random(1000 + slot),
    )
    kwargs.update(client_kwargs or {})
    client = ResilientClient(host, port, **kwargs)
    try:
        i = 0
        while not stop.is_set():
            q = queries[(slot + i) % len(queries)]
            i += 1
            probe = (
                deadline_probe_every > 0
                and i % deadline_probe_every == 0
            )
            t0 = time.perf_counter()
            try:
                client.query(
                    q["kind"],
                    q["args"],
                    deadline_ms=0 if probe else None,
                    no_cache=no_cache,
                )
                tally.success(time.perf_counter() - t0)
            except (ServerError, QueryError) as err:
                code = getattr(err, "code", "") or type(err).__name__
                if code in _EXPECTED_REJECTIONS and (
                    probe or code == "overloaded"
                ):
                    tally.rejected(code)
                else:
                    tally.failure(code)
            except ConnectionError:
                tally.failure("connection-lost")
    finally:
        tally.client_done(client)
        client.close()


def _drive(
    host: str,
    port: int,
    queries: Sequence[Dict[str, Any]],
    clients: int,
    stop: threading.Event,
    **worker_kwargs: Any,
) -> tuple:
    tally = _Tally()
    threads = [
        threading.Thread(
            target=_worker,
            args=(host, port, queries, slot, stop, tally),
            kwargs=worker_kwargs,
            daemon=True,
        )
        for slot in range(clients)
    ]
    for t in threads:
        t.start()
    return threads, tally


def _run_for(
    server: _ServerProcess,
    queries: Sequence[Dict[str, Any]],
    clients: int,
    duration: float,
    **worker_kwargs: Any,
) -> _Tally:
    stop = threading.Event()
    threads, tally = _drive(
        server.host, server.port, queries, clients, stop, **worker_kwargs
    )
    time.sleep(duration)
    stop.set()
    for t in threads:
        t.join(timeout=30.0)
    return tally


# ----------------------------------------------------------------------
# Scenarios


def _scenario_baseline(db_path, db_id, queries, clients, duration):
    with _ServerProcess(db_path) as server:
        tally = _run_for(server, queries, clients, duration)
    return {"entry": "baseline", "db_id": db_id, "faults": None,
            **tally.summary()}


def _scenario_dispatch_faults(db_path, db_id, queries, clients, duration,
                              stride=300):
    spec = f"exception@serve.dispatch%{stride}"
    with _ServerProcess(db_path, env_extra={"REPRO_FAULT": spec}) as server:
        tally = _run_for(server, queries, clients, duration, no_cache=True)
    return {"entry": "dispatch_faults", "db_id": db_id, "faults": spec,
            **tally.summary()}


def _scenario_accept_faults(db_path, db_id, queries, clients, duration,
                            stride=10):
    spec = f"exception@serve.accept%{stride}"
    with _ServerProcess(
        db_path,
        # Recycle connections every 50 requests so the accept seam is
        # actually on the hot path — long-lived connections would see
        # one accept per client and the fault would never fire.
        extra_args=["--max-requests", "50"],
        env_extra={"REPRO_FAULT": spec},
    ) as server:
        tally = _run_for(
            server, queries, clients, duration,
            client_kwargs={"max_retries": 10},
        )
    return {"entry": "accept_faults", "db_id": db_id, "faults": spec,
            **tally.summary()}


def _scenario_overload(db_path, db_id, queries, clients, duration):
    with _ServerProcess(
        db_path,
        extra_args=["--max-pending", "1", "--retry-after-ms", "40"],
    ) as server:
        tally = _run_for(
            server, queries, max(clients, 8), duration,
            no_cache=True, deadline_probe_every=7,
        )
    return {"entry": "overload", "db_id": db_id, "faults": None,
            "admission": {"max_pending": 1, "retry_after_ms": 40},
            **tally.summary()}


def _scenario_hot_swap(db_path, alt_db_path, db_id, queries, clients, swaps):
    with _ServerProcess(db_path) as server:
        stop = threading.Event()
        threads, tally = _drive(
            server.host, server.port, queries, clients, stop, no_cache=True
        )
        admin = ResilientClient(
            server.host, server.port, max_retries=8, rng=random.Random(7)
        )
        swap_errors = 0
        epochs = []
        try:
            for i in range(swaps):
                target = alt_db_path if i % 2 == 0 else db_path
                try:
                    ack = admin.reload(path=target)
                    epochs.append(ack["epoch"])
                except (ServerError, QueryError, ConnectionError):
                    swap_errors += 1
                time.sleep(0.01)
        finally:
            admin.close()
            stop.set()
            for t in threads:
                t.join(timeout=30.0)
    monotone = all(b > a for a, b in zip(epochs, epochs[1:]))
    return {"entry": "hot_swap", "db_id": db_id, "faults": None,
            "swaps": swaps, "swaps_acked": len(epochs),
            "swap_errors": swap_errors, "epochs_monotone": monotone,
            **tally.summary()}


def _scenario_crash_restart(db_path, db_id, queries, workdir,
                            workload=60, crash_at=20):
    spec = f"abort@serve.dispatch#{crash_at}~1"
    crash_dir = pathlib.Path(workdir) / "chaos-crashes"
    env = dict(os.environ)
    src_root = str(pathlib.Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULT"] = spec
    sup = ServeSupervisor(
        [sys.executable, "-m", "repro", "serve",
         "--db", db_path, "--port", "0"],
        max_restarts=3,
        backoff_base=0.05,
        backoff_max=0.5,
        jitter=0.0,
        crash_dir=str(crash_dir),
        env=env,
        log=open(os.devnull, "w"),
        rng=random.Random(7),
    )
    tally = _Tally()
    runner = threading.Thread(target=sup.run, daemon=True)
    runner.start()
    try:
        if not sup.ready.wait(timeout=60.0):
            raise RuntimeError("supervised server never announced")
        client = ResilientClient(
            "127.0.0.1", sup.port,
            timeout=10.0, max_retries=20,
            backoff_base=0.05, backoff_max=0.5,
            failure_threshold=50, reset_after=0.5,
            rng=random.Random(7),
        )
        try:
            for i in range(workload):
                q = queries[i % len(queries)]
                t0 = time.perf_counter()
                try:
                    client.query(q["kind"], q["args"], no_cache=True)
                    tally.success(time.perf_counter() - t0)
                except (ServerError, QueryError, ConnectionError) as err:
                    tally.failure(
                        getattr(err, "code", "") or type(err).__name__
                    )
        finally:
            tally.client_done(client)
            client.close()
    finally:
        sup.stop()
        runner.join(timeout=30.0)
    reports = sorted(crash_dir.glob("crash-*.json"))
    classifications = [
        json.loads(p.read_text())["attempt"]["classification"]
        for p in reports
    ]
    return {"entry": "crash_restart", "db_id": db_id, "faults": spec,
            "workload": workload, "restarts": sup.restarts,
            "crash_reports": classifications, **tally.summary()}


# ----------------------------------------------------------------------


def _build_databases(entry_name: str, workdir: str) -> tuple:
    """Compile the corpus entry plus a structural variant (one extra
    layer) so hot swaps move between genuinely different databases."""
    entry = corpus_entry(entry_name)
    directory = pathlib.Path(workdir)
    directory.mkdir(parents=True, exist_ok=True)

    db = compile_database(entry.build())
    db_path = str(directory / f"chaos-{entry_name}.ptdb")
    db.save(db_path)

    variant = dataclasses.replace(entry.params, layers=entry.params.layers + 1)
    alt = compile_database(generate_program(variant))
    alt_path = str(directory / f"chaos-{entry_name}-v2.ptdb")
    alt.save(alt_path)
    return db_path, alt_path, db.db_id


def run_chaos_bench(
    entry: str = _DEFAULT_ENTRY,
    *,
    clients: int = _DEFAULT_CLIENTS,
    duration: float = _DEFAULT_DURATION,
    swaps: int = _DEFAULT_SWAPS,
    out: str = "results/BENCH_chaos.json",
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    workdir = workdir or "."
    print(f"== chaos: compiling {entry} (+variant) ==", file=sys.stderr)
    db_path, alt_path, db_id = _build_databases(entry, workdir)
    from ..serve import PointsToDatabase

    queries = _sample_queries(PointsToDatabase.load(db_path))

    scenarios = {}

    def run(name, fn, *args, **kwargs):
        print(f"== chaos: {name} ==", file=sys.stderr)
        scenarios[name] = fn(*args, **kwargs)
        s = scenarios[name]
        print(
            f"   {s['attempts']} calls, {s['failures']} failures, "
            f"{sum(s['expected_rejections'].values())} expected rejections, "
            f"availability {s['availability_pct']:.2f}%",
            file=sys.stderr,
        )

    run("baseline", _scenario_baseline, db_path, db_id, queries, clients,
        duration)
    run("dispatch_faults", _scenario_dispatch_faults, db_path, db_id,
        queries, clients, duration)
    run("accept_faults", _scenario_accept_faults, db_path, db_id, queries,
        clients, duration)
    run("overload", _scenario_overload, db_path, db_id, queries, clients,
        duration)
    run("hot_swap", _scenario_hot_swap, db_path, alt_path, db_id, queries,
        clients, swaps)
    try:
        run("crash_restart", _scenario_crash_restart, db_path, db_id,
            queries, workdir)
    except (WorkerCrashed, RuntimeError) as err:
        scenarios["crash_restart"] = {
            "entry": "crash_restart", "db_id": db_id, "error": str(err),
            "attempts": 0, "successes": 0, "failures": 1,
            "expected_rejections": {}, "availability_pct": 0.0,
        }

    attempts = sum(s["attempts"] for s in scenarios.values())
    successes = sum(s["successes"] for s in scenarios.values())
    rejected = sum(
        sum(s.get("expected_rejections", {}).values())
        for s in scenarios.values()
    )
    denominator = attempts - rejected
    overall = {
        "attempts": attempts,
        "successes": successes,
        "expected_rejections": rejected,
        "failures": sum(s["failures"] for s in scenarios.values()),
        "availability_pct": round(
            100.0 * successes / denominator if denominator else 100.0, 3
        ),
    }
    report = {
        "benchmark": "chaos",
        "entry": entry,
        "clients": clients,
        "duration_s": duration,
        "swaps": swaps,
        "entries": scenarios,
        "overall": overall,
    }
    out_path = pathlib.Path(out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"overall availability {overall['availability_pct']:.2f}% "
        f"({overall['failures']} failures / {attempts} calls); "
        f"wrote {out_path}",
        file=sys.stderr,
    )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.chaos_bench",
        description="Availability benchmark for the serve layer under "
                    "injected faults, overload, hot swaps, and crashes",
    )
    parser.add_argument(
        "--entry", default=_DEFAULT_ENTRY,
        help="corpus entry to serve (default: freetts)",
    )
    parser.add_argument(
        "--clients", type=int, default=_DEFAULT_CLIENTS,
        help="concurrent resilient clients per scenario (default 4)",
    )
    parser.add_argument(
        "--duration", type=float, default=_DEFAULT_DURATION,
        help="seconds per steady-state scenario (default 3)",
    )
    parser.add_argument(
        "--swaps", type=int, default=_DEFAULT_SWAPS,
        help="hot swaps in the hot_swap scenario (default 100)",
    )
    parser.add_argument(
        "--out", default="results/BENCH_chaos.json",
        help="output JSON path",
    )
    parser.add_argument(
        "--workdir", default=None,
        help="directory for .ptdb scratch files (default: cwd)",
    )
    args = parser.parse_args(argv)
    report = run_chaos_bench(
        args.entry,
        clients=args.clients,
        duration=args.duration,
        swaps=args.swaps,
        out=args.out,
        workdir=args.workdir,
    )
    return 0 if report["overall"]["availability_pct"] >= 99.0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
