"""Plan-optimizer benchmark and op-count regression harness.

Two artifacts, both under ``results/``:

* ``BENCH_plan.json`` — per-corpus-entry comparison of the optimized
  pipeline against unoptimized plans plus a leave-one-out ablation of
  every pass (``opt-no-<pass>``), recording executed op counts by kind
  (``replace`` is the headline — the op the optimizer exists to shrink),
  static op counts, and best-of-N wall-clock for the whole solve
  (solver construction *including* optimization time, plus the fixpoint).
* ``PLAN_COUNTS.json`` — the committed baseline of executed op counts
  under the default (optimized) configuration.  ``--check`` recomputes
  the counts and fails if any entry executes *more* ``replace`` ops than
  the baseline records: a plan regression.

Usage::

    python -m repro.bench.plan_bench --out results
    python -m repro.bench.plan_bench --check results/PLAN_COUNTS.json

The workload is Algorithm 3 (context-insensitive points-to with
call-graph discovery): it exercises recursive rules, hoisting, and the
delta-plan machinery without the multi-minute context-sensitive solves.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time
from typing import Any, Dict, List, Optional, Sequence

from ..analysis import ContextInsensitiveAnalysis
from ..datalog.passes import PASS_NAMES
from ..ir.facts import extract_facts
from .corpus import corpus_entry, corpus_names

__all__ = [
    "solve_entry",
    "bench_entry",
    "run_plan_bench",
    "check_plan_counts",
    "expand_fused",
    "main",
]

DEFAULT_REPEATS = 3

#: Fused superops count as their expanded primitive equivalents wherever
#: op counts are compared: a ``rel_prod_replace`` is one ``rel_prod``
#: plus one ``replace``, an ``and_exist`` is one ``and`` plus one
#: ``exist``.  This keeps the regression gate fusion-neutral — fusing
#: (or unfusing) a plan can neither mask nor fake a change in how many
#: replace/rel_prod evaluations the fixpoint performs.
_FUSED_EXPANSION = {
    "rel_prod_replace": ("rel_prod", "replace"),
    "and_exist": ("and", "exist"),
}


def expand_fused(executed: Dict[str, int]) -> Dict[str, int]:
    """Executed-op counts with fused superops expanded to primitives."""
    out = dict(executed)
    for fused, parts in _FUSED_EXPANSION.items():
        n = out.pop(fused, 0)
        if n:
            for part in parts:
                out[part] = out.get(part, 0) + n
    return out


def solve_entry(
    name: str,
    optimize: Optional[bool] = None,
    disabled_passes: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    repeats: int = 1,
    facts=None,
) -> Dict[str, Any]:
    """Solve Algorithm 3 on one corpus entry under one optimizer config.

    Wall-clock is the best of ``repeats`` runs (minimum suppresses
    scheduler noise on entries that solve in well under a second); op
    counts are taken from the last run — they are deterministic.
    """
    if facts is None:
        facts = extract_facts(corpus_entry(name).build())
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        seconds, result = _timed_run(
            facts, optimize, disabled_passes, backend
        )
        best = min(best, seconds)
    return _config_record(result, best)


def _timed_run(facts, optimize, disabled_passes, backend):
    """One whole solve (construction + fixpoint) with the cyclic GC
    parked, so collection pauses don't land on one config's timing."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.monotonic()
        result = ContextInsensitiveAnalysis(
            facts=facts,
            optimize=optimize,
            disabled_passes=disabled_passes,
            backend=backend,
        ).run()
        return time.monotonic() - t0, result
    finally:
        gc.enable()


def _config_record(result, best: float) -> Dict[str, Any]:
    solver = result.solver
    executed = dict(sorted(solver.stats.plan_ops.items()))
    return {
        "executed": executed,
        "executed_total": sum(executed.values()),
        "static": dict(sorted(solver.plan_op_counts().items())),
        "seconds": round(best, 4),
        "tuples_vP": solver.relation("vP").count(),
        "iterations": solver.stats.iterations,
    }


def bench_entry(
    name: str, repeats: int = DEFAULT_REPEATS, backend: Optional[str] = None
) -> Dict[str, Any]:
    """Full config sweep for one entry: noopt, opt, and opt with each
    pass individually disabled (the per-pass contribution).

    The repeats are *interleaved* — every config runs once per round —
    so slow drift in machine load is spread evenly across configs
    instead of penalizing whichever ran last.
    """
    facts = extract_facts(corpus_entry(name).build())
    sweep: List[tuple] = [
        ("noopt", False, None),
        ("opt", True, None),
    ]
    sweep.extend(
        (f"opt-no-{pass_name}", True, [pass_name])
        for pass_name in PASS_NAMES
    )
    best: Dict[str, float] = {label: float("inf") for label, _, _ in sweep}
    last: Dict[str, Any] = {}
    for _ in range(max(1, repeats)):
        for label, optimize, disabled in sweep:
            seconds, result = _timed_run(facts, optimize, disabled, backend)
            best[label] = min(best[label], seconds)
            last[label] = result
    configs: Dict[str, Any] = {
        label: _config_record(last[label], best[label])
        for label, _, _ in sweep
    }
    # Replace counts are compared in *expanded* form (fused superops
    # count as their primitives), so the fuse pass — which hides
    # replaces inside rel_prod_replace ops — does not inflate the
    # reduction the rename-elimination passes earn.
    opt_replace = expand_fused(configs["opt"]["executed"]).get("replace", 0)
    noopt_replace = expand_fused(configs["noopt"]["executed"]).get(
        "replace", 0
    )
    reduction = 0.0
    if noopt_replace:
        reduction = round(100.0 * (1.0 - opt_replace / noopt_replace), 1)
    # Per-pass contribution: how many extra replace executions appear
    # when the pass is removed from the pipeline.
    contributions = {
        pass_name: expand_fused(
            configs[f"opt-no-{pass_name}"]["executed"]
        ).get("replace", 0)
        - opt_replace
        for pass_name in PASS_NAMES
    }
    return {
        "name": name,
        "configs": configs,
        "replace_opt": opt_replace,
        "replace_noopt": noopt_replace,
        "replace_reduction_pct": reduction,
        "wall_opt": configs["opt"]["seconds"],
        "wall_noopt": configs["noopt"]["seconds"],
        "pass_contribution_replace": contributions,
    }


def run_plan_bench(
    names: Optional[Sequence[str]] = None,
    repeats: int = DEFAULT_REPEATS,
    backend: Optional[str] = None,
    verbose: bool = True,
) -> Dict[str, Any]:
    """Benchmark every entry; returns the ``BENCH_plan.json`` payload."""
    if names is None:
        names = corpus_names(small=True)
    entries = []
    for name in names:
        record = bench_entry(name, repeats=repeats, backend=backend)
        entries.append(record)
        if verbose:
            print(
                f"  [{name}: replace {record['replace_noopt']} -> "
                f"{record['replace_opt']} "
                f"(-{record['replace_reduction_pct']}%), wall "
                f"{record['wall_noopt']}s -> {record['wall_opt']}s]",
                flush=True,
            )
    return {
        "workload": "algorithm3",
        "repeats": repeats,
        "passes": list(PASS_NAMES),
        "entries": entries,
        "summary": {
            "entries_over_30pct": sum(
                1 for e in entries if e["replace_reduction_pct"] >= 30.0
            ),
            "wall_no_worse_everywhere": all(
                e["wall_opt"] <= e["wall_noopt"] for e in entries
            ),
        },
    }


def plan_counts_payload(bench: Dict[str, Any]) -> Dict[str, Any]:
    """The regression baseline: per-entry executed op counts (optimized
    and unoptimized) distilled from a ``run_plan_bench`` payload."""
    return {
        "workload": bench["workload"],
        "entries": {
            e["name"]: {
                "opt": e["configs"]["opt"]["executed"],
                "noopt": e["configs"]["noopt"]["executed"],
                "static_opt": e["configs"]["opt"]["static"],
            }
            for e in bench["entries"]
        },
    }


def check_plan_counts(
    baseline_path: str, backend: Optional[str] = None, verbose: bool = True
) -> List[str]:
    """Recompute executed op counts and compare against the committed
    baseline.  Returns a list of human-readable regressions (empty means
    the optimizer still earns its keep on every entry)."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    problems: List[str] = []
    for name, expected in sorted(baseline["entries"].items()):
        current = solve_entry(name, optimize=True, backend=backend)
        # Compare in expanded form so the gate is indifferent to
        # whether either side fused its ops.
        got_ops = expand_fused(current["executed"])
        want_ops = expand_fused(expected["opt"])
        for kind in ("replace", "rel_prod"):
            got = got_ops.get(kind, 0)
            want = want_ops.get(kind, 0)
            if got > want:
                problems.append(
                    f"{name}: executed {kind} count regressed "
                    f"{want} -> {got}"
                )
        if verbose:
            print(
                f"  [{name}: executed replace {got_ops.get('replace', 0)} "
                f"(baseline {want_ops.get('replace', 0)})]",
                flush=True,
            )
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--entries", metavar="NAME,NAME",
        help="corpus entries (default: the small subset)",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS, metavar="N",
        help="wall-clock repeats per config, best kept (default %(default)s)",
    )
    parser.add_argument(
        "--backend", metavar="NAME", help="BDD kernel backend"
    )
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--check", metavar="BASELINE.json", nargs="?",
        const="results/PLAN_COUNTS.json",
        help="regression mode: recompute executed op counts and fail if "
        "any entry's replace count exceeds the baseline",
    )
    args = parser.parse_args(argv)

    if args.check:
        print(f"Plan-count regression check vs {args.check}", flush=True)
        problems = check_plan_counts(args.check, backend=args.backend)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        print("plan counts OK" if not problems else "PLAN REGRESSION FOUND")
        return 1 if problems else 0

    names = None
    if args.entries:
        names = [n.strip() for n in args.entries.split(",") if n.strip()]
    print("Plan-optimizer benchmark (Algorithm 3):", flush=True)
    bench = run_plan_bench(names=names, repeats=args.repeats,
                           backend=args.backend)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    bench_path = out / "BENCH_plan.json"
    bench_path.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    counts_path = out / "PLAN_COUNTS.json"
    counts_path.write_text(
        json.dumps(plan_counts_payload(bench), indent=2, sort_keys=True)
        + "\n"
    )
    print(f"wrote {bench_path} and {counts_path}")
    summary = bench["summary"]
    print(
        f"entries with >=30% replace reduction: "
        f"{summary['entries_over_30pct']}/{len(bench['entries'])}; "
        f"wall-clock no worse everywhere: "
        f"{summary['wall_no_worse_everywhere']}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
