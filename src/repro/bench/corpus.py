"""The scaled benchmark corpus: 21 synthetic applications named after the
paper's Figure 3 Sourceforge programs.

The real applications are unavailable; each corpus entry is generated
(:mod:`repro.bench.generator`) with parameters chosen to preserve the
paper's *relative* structure:

* the size ordering of Figure 3 (freetts smallest, gruntspud largest),
* the reduced-call-path explosion — mid-size entries reach 10^6..10^9
  paths and the largest exceed 10^13; ``pmd`` is the outlier with a far
  deeper shared-callee structure than its method count suggests
  ("machine-generated methods call the same class library routines"),
* threadedness per Figure 5 (freetts, openwfe and pmd are single-threaded
  — their escape analysis reports exactly one escaped object),
* ``jxplorer``-style dispatch pressure (wider hierarchies, no finals).

Absolute numbers are ~15x smaller than the paper's; every trend the
benchmarks exercise is structural, not magnitude-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..ir.program import Program
from .generator import WorkloadParams, generate_program

__all__ = ["CorpusEntry", "CORPUS", "corpus_entry", "corpus_program", "corpus_names"]


@dataclass(frozen=True)
class CorpusEntry:
    name: str
    description: str
    params: WorkloadParams

    def build(self) -> Program:
        return generate_program(self.params)


def _entry(name, description, seed, layers, threads, width=2, fanout=2,
           chain=2, groups=1, subclasses=2) -> CorpusEntry:
    return CorpusEntry(
        name=name,
        description=description,
        params=WorkloadParams(
            seed=seed,
            layers=layers,
            width=width,
            fanout=fanout,
            hierarchy_groups=groups,
            subclasses=subclasses,
            recursion_cliques=1,
            threads=threads,
            shared_chain=chain,
        ),
    )


# Figure 3 order.  Path counts grow roughly as 2^(layers - 2).
CORPUS: List[CorpusEntry] = [
    _entry("freetts", "speech synthesis system", 101, layers=8, threads=0),
    _entry("nfcchat", "scalable, distributed chat client", 102, layers=22, threads=2),
    _entry("jetty", "HTTP server and servlet container", 103, layers=18, threads=2),
    _entry("openwfe", "java workflow engine", 104, layers=20, threads=0),
    _entry("joone", "Java neural net framework", 105, layers=22, threads=1),
    _entry("jboss", "J2EE application server", 106, layers=26, threads=2),
    _entry("jbossdep", "J2EE deployer", 107, layers=27, threads=1),
    _entry("sshdaemon", "SSH daemon", 108, layers=30, threads=2),
    _entry("pmd", "Java source code analyzer", 109, layers=72, threads=0, chain=6),
    _entry("azureus", "Java bittorrent client", 110, layers=29, threads=3),
    _entry("freenet", "anonymous peer-to-peer file sharing", 111, layers=23, threads=2),
    _entry("sshterm", "SSH terminal", 112, layers=36, threads=2),
    _entry("jgraph", "graph-theory objects and algorithms", 113, layers=34, threads=1),
    _entry("umldot", "UML class diagrams from Java code", 114, layers=46, threads=1),
    _entry("jbidwatch", "auction site bidding and sniping tool", 115, layers=44, threads=2),
    _entry("columba", "graphical email client", 116, layers=41, threads=2),
    _entry("gantt", "plan projects using Gantt charts", 117, layers=41, threads=2),
    _entry("jxplorer", "ldap browser", 118, layers=28, threads=2, width=3,
           groups=2, subclasses=4),
    _entry("jedit", "programmer's text editor", 119, layers=24, threads=2,
           subclasses=3),
    _entry("megamek", "networked BattleTech game", 120, layers=46, threads=2),
    _entry("gruntspud", "graphical CVS client", 121, layers=29, threads=3,
           width=3, groups=2),
]

_BY_NAME: Dict[str, CorpusEntry] = {e.name: e for e in CORPUS}

# A fast subset for CI-style runs: small, medium, the pmd outlier, and one
# of the 10^13-path giants.
SMALL_SUBSET = ["freetts", "jetty", "jboss", "pmd", "jbidwatch"]


def corpus_names(small: bool = False) -> List[str]:
    return list(SMALL_SUBSET) if small else [e.name for e in CORPUS]


def corpus_entry(name: str) -> CorpusEntry:
    entry = _BY_NAME.get(name)
    if entry is None:
        raise KeyError(f"no corpus entry named {name!r}")
    return entry


def corpus_program(name: str) -> Program:
    return corpus_entry(name).build()
