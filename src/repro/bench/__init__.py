"""Workloads and the figure-regeneration harness.

* :mod:`repro.bench.generator` — parameterized synthetic applications,
* :mod:`repro.bench.corpus` — the 21-entry scaled corpus (Figure 3 names),
* :mod:`repro.bench.harness` — regenerates Figures 3-6, the Section 6.2
  scaling observation, and the design ablations.

CLI::

    python -m repro.bench.harness all --small
"""

from .generator import WorkloadParams, generate_program
from .corpus import CORPUS, CorpusEntry, corpus_entry, corpus_names, corpus_program
from .harness import (
    BenchmarkRun,
    ablation_table,
    fig3_table,
    fig4_table,
    fig5_table,
    fig6_table,
    run_benchmark,
    run_corpus,
    scaling_table,
)

__all__ = [
    "CORPUS",
    "BenchmarkRun",
    "CorpusEntry",
    "WorkloadParams",
    "ablation_table",
    "corpus_entry",
    "corpus_names",
    "corpus_program",
    "fig3_table",
    "fig4_table",
    "fig5_table",
    "fig6_table",
    "generate_program",
    "run_benchmark",
    "run_corpus",
    "scaling_table",
]
