"""Synthetic workload generator.

The paper's 21 Sourceforge applications are unavailable (and a pure-Python
BDD is far slower per operation than BuDDy), so the corpus is generated:
programs with the structural features that drive the paper's results —

* **layered call diamonds** — every layer multiplies the number of reduced
  call paths, yielding the exponential context counts of Figure 3 (the
  largest corpus members exceed 10^12 paths),
* **virtual dispatch** over a generated class hierarchy with interfaces
  and overrides (what call-graph discovery prunes, Section 3),
* **recursive cliques** — strongly connected components that Algorithm 4
  collapses,
* **shared utility chains** — the `pmd` phenomenon: "many machine-
  generated methods call the same class library routines, leading to a
  particularly egregious exponential blowup",
* **container traffic** through the modeled library (the classic
  motivation for context sensitivity),
* **threads and synchronization** for the escape analysis of Figure 5,
* **over-declared variables** so type refinement (Figure 6) has work to do.

Generation is deterministic in the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir.builder import MethodBuilder, ProgramBuilder
from ..ir.program import Program

__all__ = ["WorkloadParams", "generate_program"]


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs for one synthetic application."""

    seed: int = 0
    layers: int = 6              # call-graph depth (diamond layers)
    width: int = 2               # methods per layer
    fanout: int = 2              # calls from each method into the next layer
    hierarchy_groups: int = 1    # independent class hierarchies
    subclasses: int = 2          # concrete subclasses per hierarchy
    recursion_cliques: int = 1   # mutually recursive method pairs
    threads: int = 1             # thread classes (0 = single-threaded)
    allocs_per_method: int = 1
    shared_chain: int = 0        # length of a pmd-style shared utility chain
    use_library: bool = True
    casts: bool = True
    use_exceptions: bool = False  # layer methods may throw through the stack
    use_statics: bool = False     # per-layer static caches (global traffic)
    use_clinit: bool = False      # a class initializer entry point

    def name_hint(self) -> str:
        return f"w{self.seed}_l{self.layers}x{self.width}"


def generate_program(params: WorkloadParams) -> Program:
    """Build a closed, validated program from ``params``."""
    rng = random.Random(params.seed)
    b = ProgramBuilder()
    if params.use_library:
        from ..ir.frontend import parse_classes
        from ..ir.library import LIBRARY_SOURCE

        for decl in parse_classes(LIBRARY_SOURCE):
            b.program.add_class(decl)

    # ------------------------------------------------------------------
    # Class hierarchies with virtual dispatch.
    # ------------------------------------------------------------------
    hierarchy_classes: List[List[str]] = []
    for g in range(params.hierarchy_groups):
        iface = b.new_interface(f"IWork{g}")
        base = b.new_class(f"Base{g}", implements=[f"IWork{g}"])
        b.abstract_method(iface, "work", params=[("x", "Object")], returns="Object")
        base_m = b.method(base, "work", params=[("x", "Object")], returns="Object")
        base_m.new("r", "Object").ret("r")
        names = [f"Base{g}"]
        for s in range(params.subclasses):
            cls = b.new_class(f"Impl{g}x{s}", extends=f"Base{g}")
            m = b.method(cls, "work", params=[("x", "Object")], returns="Object")
            m.new("r", f"Impl{g}x{s}")  # each override returns its own type
            if s % 2 == 0:
                m.ret("r")
            else:
                m.ret("x")  # flows the argument through
            names.append(f"Impl{g}x{s}")
        hierarchy_classes.append(names)

    # A Box class carried through the layers (field traffic).
    box = b.new_class("DataBox")
    b.field(box, "payload", "Object")
    b.field(box, "link", "DataBox")
    b.field(box, "special", "Object")  # typed thread payloads land here

    if params.use_exceptions:
        b.new_class("WorkError")
    if params.use_statics or params.use_clinit:
        registry = b.new_class("Registry")
        b.field(registry, "cache", "Object", static=True)
        if params.use_clinit:
            clinit = b.static_method(registry, "clinit")
            clinit.new("seed", "Object")
            clinit.static_store("Registry", "cache", "seed")

    # ------------------------------------------------------------------
    # Shared utility chain (the pmd phenomenon).
    # ------------------------------------------------------------------
    util = b.new_class("Util")
    # A shared identity helper: every layer method funnels a typed object
    # through it, so a context-insensitive analysis conflates the types of
    # all callers while the cloned analysis keeps them apart (the Figure 6
    # precision gap).
    ident = b.static_method(util, "id", params=[("o", "Object")], returns="Object")
    ident.ret("o")
    for k in range(params.shared_chain):
        m = b.static_method(
            util, f"step{k}", params=[("b", "DataBox")], returns="Object"
        )
        if k + 1 < params.shared_chain:
            m.invoke_static("Util", f"step{k + 1}", ["b"], dst="r")
        else:
            m.load("r", "b", "payload")
        m.ret("r")

    # ------------------------------------------------------------------
    # Layered worker methods.
    # ------------------------------------------------------------------
    layer_cls = b.new_class("Layers")
    method_names: List[List[str]] = []
    for layer in range(params.layers):
        row = []
        for j in range(params.width):
            row.append(f"m{layer}x{j}")
        method_names.append(row)

    for layer in range(params.layers - 1, -1, -1):
        for j, name in enumerate(method_names[layer]):
            m = b.static_method(
                layer_cls, name, params=[("b", "DataBox")], returns="Object"
            )
            for a in range(params.allocs_per_method):
                m.new(f"o{a}", "Object")
            m.store("b", "payload", "o0")
            # Calls into the next layer: the diamond structure.
            if layer + 1 < params.layers:
                targets = [
                    method_names[layer + 1][rng.randrange(params.width)]
                    for _ in range(params.fanout)
                ]
                for t_idx, target in enumerate(targets):
                    m.invoke_static("Layers", target, ["b"], dst=f"c{t_idx}")
            # Virtual dispatch through a hierarchy.
            if hierarchy_classes:
                group = rng.randrange(len(hierarchy_classes))
                concrete = hierarchy_classes[group][
                    rng.randrange(len(hierarchy_classes[group]))
                ]
                m.local("w", f"Base{group}")
                m.new("w", concrete)
                m.invoke("w", "work", ["o0"], dst="v")
                # Funnel through the shared helper: CI conflates `held`
                # with every other caller's type, CS does not.
                m.local("held", f"Base{group}")
                m.invoke_static("Util", "id", ["w"], dst="anon")
                m.cast("held", f"Base{group}", "anon")
                if params.casts:
                    # Down-cast the conflated helper result: with type
                    # filtering `narrow` holds one type, without it the
                    # whole conflated set leaks through (Figure 6's
                    # no-filter column).
                    m.local("narrow", concrete)
                    m.cast("narrow", concrete, "anon")
            # pmd-style shared chain entry.
            if params.shared_chain:
                m.invoke_static("Util", "step0", ["b"], dst="u")
            if layer % 4 == 0:
                # Field-sensitive pointer analysis sees nothing here (no
                # DataBox reaching `b` has `special` set); the field-based
                # type analysis (rule 22/23) reports the thread payloads.
                m.load("spec", "b", "special")
            if params.use_exceptions and layer % 3 == 0:
                m.begin_if()
                m.new("err", "WorkError")
                m.throw("err")
                m.end_if()
            if params.use_statics and layer % 2 == 0:
                m.static_store("Registry", "cache", "o0")
                m.static_load("cached", "Registry", "cache")
            m.load("got", "b", "payload")
            m.ret("got")

    # ------------------------------------------------------------------
    # Recursive cliques.
    # ------------------------------------------------------------------
    rec_cls = b.new_class("Recursion")
    for k in range(params.recursion_cliques):
        ping = b.static_method(
            rec_cls, f"ping{k}", params=[("b", "DataBox")], returns="Object"
        )
        ping.new("o", "Object")
        ping.begin_if().ret("o").end_if()
        ping.invoke_static("Recursion", f"pong{k}", ["b"], dst="r")
        ping.ret("r")
        pong = b.static_method(
            rec_cls, f"pong{k}", params=[("b", "DataBox")], returns="Object"
        )
        pong.begin_if()
        pong.invoke_static("Recursion", f"ping{k}", ["b"], dst="r")
        pong.ret("r")
        pong.end_if()
        pong.load("p", "b", "payload")
        pong.ret("p")

    # ------------------------------------------------------------------
    # Threads.
    # ------------------------------------------------------------------
    shared_holder = b.new_class("SharedState")
    b.field(shared_holder, "channel", "Object", static=True)
    for t in range(params.threads):
        worker = b.new_class(f"Worker{t}", extends="Thread")
        run = b.method(worker, "run")
        # Typed payload: the field-merging type analysis (rule 22/23)
        # smears it across every DataBox, the pointer analysis does not.
        group0 = hierarchy_classes[0] if hierarchy_classes else ["Object"]
        mine_cls = group0[1 + t % max(1, len(group0) - 1)] if len(group0) > 1 else group0[0]
        run.new("mine", mine_cls)
        run.new("box", "DataBox")       # private: typed payload stays here
        run.store("box", "special", "mine")
        run.static_load("seen", "SharedState", "channel")
        run.sync("seen")
        run.sync("mine")
        if method_names:
            run.new("workbox", "DataBox")
            run.new("plain", "Object")
            run.store("workbox", "payload", "plain")
            run.invoke_static("Layers", method_names[0][0], ["workbox"], dst="x")

    # ------------------------------------------------------------------
    # Main: drives the top layer, the cliques, the library, the threads.
    # ------------------------------------------------------------------
    main_cls = b.new_class("Main")
    main = b.static_method(main_cls, "main")
    main.new("box", "DataBox")
    main.new("seed", "Object")
    main.store("box", "payload", "seed")
    for name in method_names[0]:
        main.invoke_static("Layers", name, ["box"], dst=f"r_{name}")
    for k in range(params.recursion_cliques):
        main.invoke_static("Recursion", f"ping{k}", ["box"], dst=f"rec{k}")
    if params.use_library:
        main.new("list", "ArrayList")
        main.new("elem", "Object")
        main.invoke("list", "add", ["elem"])
        main.invoke("list", "get", dst="fetched")
        main.new("key", "String")
        main.invoke("key", "toCharArray", dst="chars")
        main.new("spec", "PBEKeySpec")
        main.invoke("spec", "init", ["chars"])
        main.local("general", "Object")
        main.new("general", "String")  # over-declared: refinable
    main.new("published", "Object")
    main.static_store("SharedState", "channel", "published")
    main.sync("published")
    for t in range(params.threads):
        main.new(f"w{t}", f"Worker{t}")
        main.invoke(f"w{t}", "start")
    return b.build(main="Main")
