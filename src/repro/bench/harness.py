"""The benchmark harness: regenerates every table and figure of the paper.

* :func:`fig3_table` — benchmark vitals (classes, methods, statements,
  vars, allocs, context-sensitive paths),
* :func:`fig4_table` — analysis times and peak BDD memory for Algorithms
  1, 2, 3 (with iteration counts), 5, 6 and 7,
* :func:`fig5_table` — escape analysis results,
* :func:`fig6_table` — type refinement precision under six variants,
* :func:`scaling_table` — context-sensitive analysis time versus number
  of reduced call paths (the O(log^2 n) observation of Section 6.2),
* :func:`ablation_table` — the design-choice ablations called out in
  DESIGN.md (semi-naive evaluation, variable order, type filtering,
  contiguous context numbering).

Each function returns ``(text, rows)``; the CLI (``python -m
repro.bench.harness <figure>``) prints the text and writes it under
``results/``.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ContextSensitiveTypeAnalysis,
    ThreadEscapeAnalysis,
)
from ..analysis.queries import refinement_stats
from ..callgraph import cha_call_graph, number_call_graph
from ..ir.facts import extract_facts
from ..runtime import ReproError, ResourceBudget
from .corpus import CORPUS, corpus_entry, corpus_names
from .generator import WorkloadParams, generate_program

__all__ = [
    "BenchmarkRun",
    "run_benchmark",
    "run_corpus",
    "run_corpus_supervised",
    "fig3_table",
    "fig4_table",
    "fig5_table",
    "fig6_table",
    "scaling_table",
    "ablation_table",
    "main",
]


def _mb(nodes: int) -> float:
    return nodes * 16 / 1e6


@dataclass
class BenchmarkRun:
    """Everything the figures need for one corpus entry, computed once."""

    name: str
    stats: Dict[str, int]
    num_vars: int
    paths: int
    # (seconds, peak nodes) per analysis, plus discovery iterations.
    alg1: Tuple[float, int]
    alg2: Tuple[float, int]
    alg3: Tuple[float, int]
    alg3_iterations: int
    alg5: Tuple[float, int]
    alg6: Tuple[float, int]
    alg7: Tuple[float, int]
    escape_summary: Dict[str, int]
    refinement: Dict[str, Tuple[float, float]]  # variant -> (multi%, refinable%)
    degraded: List[str] = field(default_factory=list)
    backend: str = ""  # BddKernel backend that produced these numbers

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form (tuples become lists) — the worker protocol and
        ``BENCH_*.json`` artifacts use this."""
        return {
            "name": self.name,
            "stats": dict(self.stats),
            "num_vars": self.num_vars,
            "paths": self.paths,
            "alg1": list(self.alg1),
            "alg2": list(self.alg2),
            "alg3": list(self.alg3),
            "alg3_iterations": self.alg3_iterations,
            "alg5": list(self.alg5),
            "alg6": list(self.alg6),
            "alg7": list(self.alg7),
            "escape_summary": dict(self.escape_summary),
            "refinement": {k: list(v) for k, v in self.refinement.items()},
            "degraded": list(self.degraded),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchmarkRun":
        return cls(
            name=data["name"],
            stats=dict(data["stats"]),
            num_vars=int(data["num_vars"]),
            paths=int(data["paths"]),
            alg1=tuple(data["alg1"]),
            alg2=tuple(data["alg2"]),
            alg3=tuple(data["alg3"]),
            alg3_iterations=int(data["alg3_iterations"]),
            alg5=tuple(data["alg5"]),
            alg6=tuple(data["alg6"]),
            alg7=tuple(data["alg7"]),
            escape_summary=dict(data["escape_summary"]),
            refinement={k: tuple(v) for k, v in data["refinement"].items()},
            degraded=list(data.get("degraded", ())),
            backend=str(data.get("backend", "")),
        )


def run_benchmark(
    name: str,
    timeout: Optional[float] = None,
    node_budget: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> BenchmarkRun:
    """Run every analysis of Figure 4 on one corpus entry.

    Each analysis result (and its BDD arena) is reduced to scalars and
    dropped before the next analysis starts — seven live solvers at once
    would multiply the peak memory for no benefit.

    ``timeout``/``node_budget`` bound each analysis individually (each
    gets a fresh :class:`ResourceBudget`).  A budgeted context-sensitive
    analysis that cannot finish degrades instead of raising; the names of
    degraded analyses are recorded in ``BenchmarkRun.degraded``.  Budget
    faults from the context-insensitive analyses propagate as
    :class:`ReproError` for the caller to handle.
    """

    def budget() -> Optional[ResourceBudget]:
        if timeout is None and node_budget is None:
            return None
        return ResourceBudget(timeout=timeout, node_budget=node_budget)

    from ..bdd import resolve_backend_name

    backend = resolve_backend_name(backend)
    entry = corpus_entry(name)
    program = entry.build()
    facts = extract_facts(program)
    cha = cha_call_graph(facts)
    refinement: Dict[str, Tuple[float, float]] = {}
    degraded: List[str] = []

    alg1 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=False,
        call_graph=cha, budget=budget(), backend=backend,
    ).run()
    alg1_stats = (alg1.seconds, alg1.peak_nodes)
    del alg1

    alg2 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=False,
        call_graph=cha, budget=budget(), backend=backend,
    ).run()
    alg2_stats = (alg2.seconds, alg2.peak_nodes)
    del alg2, cha

    alg3_nofilter = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=True,
        query_fragments=["query_refinement_ci"], budget=budget(),
        backend=backend,
    ).run()
    refinement["ci_nofilter"] = refinement_stats(alg3_nofilter, "ci").as_row()
    del alg3_nofilter

    alg3 = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=True,
        query_fragments=["query_refinement_ci"], budget=budget(),
        backend=backend,
    ).run()
    refinement["ci_filter"] = refinement_stats(alg3, "ci").as_row()
    alg3_stats = (alg3.seconds, alg3.peak_nodes)
    alg3_iterations = alg3.iterations
    graph = alg3.discovered_call_graph
    del alg3

    def fell_back_to_ci(result) -> bool:
        report = result.degradation
        return report is not None and report.final_mode == "context_insensitive"

    alg5 = ContextSensitiveAnalysis(
        facts=facts, call_graph=graph,
        query_fragments=["query_refinement_cs_pointer"],
        budget=budget(), checkpoint_dir=checkpoint_dir, backend=backend,
    ).run()
    if alg5.degraded:
        degraded.append(f"alg5:{alg5.degradation.final_mode}")
    if fell_back_to_ci(alg5):
        # The fallback result has no context dimension, so its precision
        # is by definition the context-insensitive row.
        refinement["cs_pointer_proj"] = refinement["ci_filter"]
        refinement["cs_pointer_full"] = refinement["ci_filter"]
        paths = number_call_graph(
            graph, entries=facts.entry_method_ids()
        ).max_paths()
    else:
        refinement["cs_pointer_proj"] = refinement_stats(alg5, "projected").as_row()
        refinement["cs_pointer_full"] = refinement_stats(alg5, "full").as_row()
        paths = alg5.max_paths()
    alg5_stats = (alg5.seconds, alg5.peak_nodes)
    del alg5

    alg6 = ContextSensitiveTypeAnalysis(
        facts=facts, call_graph=graph,
        query_fragments=["query_refinement_cs_type"],
        budget=budget(), checkpoint_dir=checkpoint_dir, backend=backend,
    ).run()
    if alg6.degraded:
        degraded.append(f"alg6:{alg6.degradation.final_mode}")
    if fell_back_to_ci(alg6):
        refinement["cs_type_proj"] = refinement["ci_filter"]
        refinement["cs_type_full"] = refinement["ci_filter"]
    else:
        refinement["cs_type_proj"] = refinement_stats(alg6, "projected").as_row()
        refinement["cs_type_full"] = refinement_stats(alg6, "full").as_row()
    alg6_stats = (alg6.seconds, alg6.peak_nodes)
    del alg6

    alg7 = ThreadEscapeAnalysis(
        facts=facts, call_graph=graph, budget=budget(), backend=backend
    ).run()
    alg7_stats = (alg7.seconds, alg7.peak_nodes)
    escape_summary = alg7.summary()
    del alg7

    return BenchmarkRun(
        name=name,
        stats=program.stats(),
        num_vars=len(facts.maps["V"]),
        paths=paths,
        alg1=alg1_stats,
        alg2=alg2_stats,
        alg3=alg3_stats,
        alg3_iterations=alg3_iterations,
        alg5=alg5_stats,
        alg6=alg6_stats,
        alg7=alg7_stats,
        escape_summary=escape_summary,
        refinement=refinement,
        degraded=degraded,
        backend=backend,
    )


def run_corpus(
    small: bool = False,
    verbose: bool = True,
    timeout: Optional[float] = None,
    node_budget: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    names: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> List[BenchmarkRun]:
    """Benchmark the whole corpus; a budget-exhausted entry is skipped
    (with a note) instead of aborting the remaining entries."""
    runs = []
    for name in names if names is not None else corpus_names(small=small):
        start = time.monotonic()
        try:
            run = run_benchmark(
                name,
                timeout=timeout,
                node_budget=node_budget,
                checkpoint_dir=checkpoint_dir,
                backend=backend,
            )
        except ReproError as err:
            if verbose:
                print(
                    f"  [{name}: skipped, budget exhausted: {err}]", flush=True
                )
            continue
        runs.append(run)
        if verbose:
            note = f" degraded {','.join(run.degraded)}" if run.degraded else ""
            print(
                f"  [{name}: {time.monotonic() - start:.1f}s{note}]",
                flush=True,
            )
    return runs


def run_corpus_supervised(
    names: Optional[Sequence[str]] = None,
    small: bool = False,
    verbose: bool = True,
    timeout: Optional[float] = None,
    node_budget: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    jobs: int = 2,
    retries: int = 1,
    memory_limit_mb: Optional[int] = None,
    deadline: Optional[float] = None,
    entry_env: Optional[Dict[str, Dict[str, str]]] = None,
    backend: Optional[str] = None,
) -> Tuple[List[BenchmarkRun], List[Dict[str, Any]]]:
    """Benchmark the corpus with per-entry process isolation.

    Each entry runs in its own supervised worker process
    (:mod:`repro.runtime.supervisor`): a crash, hang, or OOM in one entry
    is classified and recorded while the others complete.  ``timeout`` and
    ``node_budget`` are the *cooperative* per-analysis budgets (as in
    :func:`run_corpus`); ``deadline`` and ``memory_limit_mb`` are the
    *hard* per-entry limits (SIGKILL escalation and ``RLIMIT_AS``).

    Returns ``(runs, records)``: the completed :class:`BenchmarkRun` list
    plus one record per entry with the supervision outcome and the
    isolation overhead — supervised wall-clock minus the child's own
    solve time, i.e. what fork + import + JSON serialization cost.

    ``entry_env`` maps an entry name to extra environment variables for
    *that entry's* workers — the seam fault-injection tests use to poison
    a single entry (``{"jetty": {"REPRO_FAULT": "abort@solver.stratum"}}``)
    and assert the others still complete.
    """
    from ..runtime.errors import WorkerCrashed
    from ..runtime.supervisor import Supervisor, SupervisorConfig
    from ..runtime.worker import WorkerPool

    if names is None:
        names = corpus_names(small=small)
    job_list = []
    for name in names:
        job = {
            "kind": "bench",
            "name": name,
            "timeout": timeout,
            "node_budget": node_budget,
            "checkpoint_dir": checkpoint_dir,
            "backend": backend,
        }
        if entry_env and name in entry_env:
            job["env"] = dict(entry_env[name])
        job_list.append(job)
    supervisor = Supervisor(
        SupervisorConfig(
            timeout=deadline,
            memory_limit_mb=memory_limit_mb,
            retries=retries,
        )
    )
    results = WorkerPool(supervisor, jobs=jobs).run(job_list)

    runs: List[BenchmarkRun] = []
    records: List[Dict[str, Any]] = []
    for name, outcome in zip(names, results):
        if isinstance(outcome, WorkerCrashed):
            records.append(
                {
                    "name": name,
                    "ok": False,
                    "classification": outcome.classification,
                    "attempts": outcome.attempts,
                }
            )
            if verbose:
                print(
                    f"  [{name}: crashed ({outcome.classification}), "
                    f"{len(outcome.attempts)} attempt(s)]",
                    flush=True,
                )
            continue
        value = outcome.value
        solve_seconds = float(value.pop("solve_seconds", 0.0))
        run = BenchmarkRun.from_dict(value)
        runs.append(run)
        records.append(
            {
                "name": name,
                "ok": True,
                "degraded": run.degraded,
                "retries": outcome.retries,
                "wall_seconds": outcome.wall_seconds,
                "solve_seconds": solve_seconds,
                "isolation_overhead_s": max(
                    0.0, outcome.wall_seconds - solve_seconds
                ),
                "attempts": [a.to_dict() for a in outcome.attempts],
            }
        )
        if verbose:
            rec = records[-1]
            note = f" degraded {','.join(run.degraded)}" if run.degraded else ""
            print(
                f"  [{name}: {rec['wall_seconds']:.1f}s "
                f"(isolation overhead {rec['isolation_overhead_s']:.2f}s)"
                f"{note}]",
                flush=True,
            )
    return runs, records


def _sci(n: int) -> str:
    if n < 1000:
        return str(n)
    exponent = int(math.floor(math.log10(n)))
    mantissa = n / 10 ** exponent
    return f"{mantissa:.0f}e{exponent}"


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------


def fig3_table(runs: Sequence[BenchmarkRun]) -> Tuple[str, List[dict]]:
    header = (
        f"{'Name':<12}{'Classes':>8}{'Methods':>8}{'Stmts':>7}"
        f"{'Vars':>7}{'Allocs':>7}{'C.S. Paths':>12}"
    )
    lines = [
        "Figure 3: benchmark vitals (scaled corpus; 'Stmts' stands in for",
        "the paper's bytecode counts)",
        header,
        "-" * len(header),
    ]
    rows = []
    for run in runs:
        s = run.stats
        lines.append(
            f"{run.name:<12}{s['classes']:>8}{s['methods']:>8}"
            f"{s['statements']:>7}{run.num_vars:>7}{s['allocs']:>7}"
            f"{_sci(run.paths):>12}"
        )
        rows.append(
            {
                "name": run.name,
                "classes": s["classes"],
                "methods": s["methods"],
                "statements": s["statements"],
                "vars": run.num_vars,
                "allocs": s["allocs"],
                "paths": run.paths,
            }
        )
    return "\n".join(lines), rows


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------


def fig4_table(runs: Sequence[BenchmarkRun]) -> Tuple[str, List[dict]]:
    header = (
        f"{'Name':<12}"
        f"{'A1 s':>7}{'MB':>6}"
        f"{'A2 s':>7}{'MB':>6}"
        f"{'A3 s':>7}{'MB':>6}{'it':>4}"
        f"{'A5 s':>8}{'MB':>7}"
        f"{'A6 s':>7}{'MB':>6}"
        f"{'A7 s':>7}{'MB':>6}"
    )
    lines = [
        "Figure 4: analysis times (seconds) and peak BDD memory (MB at",
        "16 B/node).  A1/A2: context-insensitive without/with type",
        "filtering; A3: on-the-fly call graph (+ fixpoint iterations);",
        "A5: context-sensitive pointers; A6: context-sensitive types;",
        "A7: thread-sensitive pointers.",
        header,
        "-" * len(header),
    ]
    rows = []
    for r in runs:
        lines.append(
            f"{r.name:<12}"
            f"{r.alg1[0]:>7.2f}{_mb(r.alg1[1]):>6.1f}"
            f"{r.alg2[0]:>7.2f}{_mb(r.alg2[1]):>6.1f}"
            f"{r.alg3[0]:>7.2f}{_mb(r.alg3[1]):>6.1f}{r.alg3_iterations:>4}"
            f"{r.alg5[0]:>8.2f}{_mb(r.alg5[1]):>7.1f}"
            f"{r.alg6[0]:>7.2f}{_mb(r.alg6[1]):>6.1f}"
            f"{r.alg7[0]:>7.2f}{_mb(r.alg7[1]):>6.1f}"
        )
        rows.append(
            {
                "name": r.name,
                "alg1": r.alg1,
                "alg2": r.alg2,
                "alg3": r.alg3,
                "alg3_iterations": r.alg3_iterations,
                "alg5": r.alg5,
                "alg6": r.alg6,
                "alg7": r.alg7,
            }
        )
    return "\n".join(lines), rows


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------


def fig5_table(runs: Sequence[BenchmarkRun]) -> Tuple[str, List[dict]]:
    header = (
        f"{'Name':<12}{'captured':>10}{'escaped':>9}"
        f"{'~needed':>9}{'needed':>8}"
    )
    lines = [
        "Figure 5: escape analysis — captured/escaped allocation sites and",
        "unneeded/needed synchronization operations",
        header,
        "-" * len(header),
    ]
    rows = []
    for r in runs:
        s = r.escape_summary
        lines.append(
            f"{r.name:<12}{s['captured']:>10}{s['escaped']:>9}"
            f"{s['sync_unneeded']:>9}{s['sync_needed']:>8}"
        )
        rows.append({"name": r.name, **s})
    return "\n".join(lines), rows


# ----------------------------------------------------------------------
# Figure 6
# ----------------------------------------------------------------------

_FIG6_VARIANTS = [
    ("ci_nofilter", "CI no filter"),
    ("ci_filter", "CI filter"),
    ("cs_pointer_proj", "proj CS ptr"),
    ("cs_type_proj", "proj CS type"),
    ("cs_pointer_full", "full CS ptr"),
    ("cs_type_full", "full CS type"),
]


def fig6_table(runs: Sequence[BenchmarkRun]) -> Tuple[str, List[dict]]:
    header = f"{'Name':<12}" + "".join(
        f"{label:>14}" for _, label in _FIG6_VARIANTS
    )
    sub = f"{'':<12}" + "".join(f"{'multi refine':>14}" for _ in _FIG6_VARIANTS)
    lines = [
        "Figure 6: type refinement precision (percent of variables that",
        "are multi-typed / refinable) under six analysis variants",
        header,
        sub,
        "-" * len(header),
    ]
    rows = []
    for r in runs:
        cells = []
        for key, _ in _FIG6_VARIANTS:
            multi, refine = r.refinement[key]
            cells.append(f"{multi:>6.1f} {refine:>6.1f}")
        lines.append(f"{r.name:<12}" + " ".join(cells))
        rows.append({"name": r.name, **r.refinement})
    return "\n".join(lines), rows


# ----------------------------------------------------------------------
# Section 6.2 scaling claim
# ----------------------------------------------------------------------


def scaling_table(
    layer_counts: Sequence[int] = (8, 14, 20, 26, 32, 38, 44),
) -> Tuple[str, List[dict]]:
    """Context-sensitive analysis time vs number of call paths.

    The paper observes the time "scales approximately with O(lg^2 n) where
    n is the number of paths in the call graph"."""
    header = f"{'layers':>7}{'methods':>9}{'paths':>10}{'lg n':>7}{'CS s':>8}{'s/lg^2':>9}"
    lines = [
        "Section 6.2: context-sensitive analysis time vs call paths",
        header,
        "-" * len(header),
    ]
    rows = []
    for layers in layer_counts:
        params = WorkloadParams(
            seed=7, layers=layers, width=2, fanout=2, shared_chain=2, threads=1
        )
        program = generate_program(params)
        facts = extract_facts(program)
        ci = ContextInsensitiveAnalysis(facts=facts).run()
        cs = ContextSensitiveAnalysis(
            facts=facts, call_graph=ci.discovered_call_graph
        ).run()
        paths = cs.max_paths()
        lg = math.log2(max(paths, 2))
        per = cs.seconds / (lg * lg)
        lines.append(
            f"{layers:>7}{program.stats()['methods']:>9}{_sci(paths):>10}"
            f"{lg:>7.1f}{cs.seconds:>8.2f}{per:>9.4f}"
        )
        rows.append(
            {
                "layers": layers,
                "paths": paths,
                "lg": lg,
                "seconds": cs.seconds,
                "seconds_per_lg2": per,
            }
        )
    return "\n".join(lines), rows


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


def ablation_table(name: str = "jboss") -> Tuple[str, List[dict]]:
    """DESIGN.md section 6: the design-choice ablations."""
    entry = corpus_entry(name)
    program = entry.build()
    facts = extract_facts(program)
    rows = []
    lines = [f"Ablations on corpus entry '{name}':"]

    # 1. Semi-naive vs naive evaluation (Section 2.4.1).
    fast = ContextInsensitiveAnalysis(facts=facts).run()
    slow = ContextInsensitiveAnalysis(facts=facts, naive=True).run()
    lines.append(
        f"  incrementalization: semi-naive {fast.seconds:.2f}s "
        f"({fast.solver.stats.rule_applications} rule applications) vs "
        f"naive {slow.seconds:.2f}s ({slow.solver.stats.rule_applications})"
    )
    rows.append(
        {
            "ablation": "seminaive",
            "fast_s": fast.seconds,
            "naive_s": slow.seconds,
            "fast_apps": fast.solver.stats.rule_applications,
            "naive_apps": slow.solver.stats.rule_applications,
        }
    )

    # 2. Variable order: context bits deepest (default) vs first.
    graph = fast.discovered_call_graph
    good = ContextSensitiveAnalysis(facts=facts, call_graph=graph).run()
    bad = ContextSensitiveAnalysis(
        facts=facts, call_graph=graph, order_spec="C_V_H_F_T_I_M_Z"
    ).run()
    lines.append(
        f"  variable order:     contexts-last {good.seconds:.2f}s "
        f"({_mb(good.peak_nodes):.1f} MB) vs contexts-first "
        f"{bad.seconds:.2f}s ({_mb(bad.peak_nodes):.1f} MB)"
    )
    rows.append(
        {
            "ablation": "order",
            "good_s": good.seconds,
            "bad_s": bad.seconds,
            "good_nodes": good.peak_nodes,
            "bad_nodes": bad.peak_nodes,
        }
    )

    # 3. Type filtering: time and precision (Section 2.3 / Figure 4).
    cha = cha_call_graph(facts)
    unfiltered = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=False,
        call_graph=cha,
    ).run()
    filtered = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=False,
        call_graph=cha,
    ).run()
    lines.append(
        f"  type filtering:     off {unfiltered.seconds:.2f}s "
        f"({unfiltered.relation('vP').count()} vP tuples) vs on "
        f"{filtered.seconds:.2f}s ({filtered.relation('vP').count()} tuples)"
    )
    rows.append(
        {
            "ablation": "typefilter",
            "off_s": unfiltered.seconds,
            "on_s": filtered.seconds,
            "off_tuples": unfiltered.relation("vP").count(),
            "on_tuples": filtered.relation("vP").count(),
        }
    )

    # 4. Plan optimizer: executed BDD operations with the pass pipeline
    # on vs off (the bddbddb-style query-plan optimization).
    opt = ContextInsensitiveAnalysis(facts=facts, optimize=True).run()
    unopt = ContextInsensitiveAnalysis(facts=facts, optimize=False).run()
    opt_ops = opt.solver.stats.plan_ops
    unopt_ops = unopt.solver.stats.plan_ops
    lines.append(
        f"  plan optimizer:     on {opt.seconds:.2f}s "
        f"({opt_ops.get('replace', 0)} replace / "
        f"{sum(opt_ops.values())} ops) vs off {unopt.seconds:.2f}s "
        f"({unopt_ops.get('replace', 0)} replace / "
        f"{sum(unopt_ops.values())} ops)"
    )
    rows.append(
        {
            "ablation": "planopt",
            "on_s": opt.seconds,
            "off_s": unopt.seconds,
            "on_replace": opt_ops.get("replace", 0),
            "off_replace": unopt_ops.get("replace", 0),
            "on_ops": sum(opt_ops.values()),
            "off_ops": sum(unopt_ops.values()),
        }
    )

    # 5. Contiguous vs randomized context numbering (Section 4.1).  The
    # randomized IEC can only be built tuple-by-tuple, so this ablation
    # runs on the smallest entry — which is exactly the point: random
    # numbering does not scale past toy context counts.
    small = corpus_entry("freetts").build()
    small_facts = extract_facts(small)
    ci = ContextInsensitiveAnalysis(facts=small_facts).run()
    graph = ci.discovered_call_graph
    contiguous = ContextSensitiveAnalysis(facts=small_facts, call_graph=graph).run()
    shuffled = _run_with_shuffled_numbering(small_facts, graph)
    lines.append(
        f"  context numbering:  contiguous {contiguous.seconds:.2f}s "
        f"({_mb(contiguous.peak_nodes):.1f} MB) vs randomized "
        f"{shuffled[0]:.2f}s ({_mb(shuffled[1]):.1f} MB)  [entry 'freetts']"
    )
    rows.append(
        {
            "ablation": "numbering",
            "contiguous_s": contiguous.seconds,
            "contiguous_nodes": contiguous.peak_nodes,
            "shuffled_s": shuffled[0],
            "shuffled_nodes": shuffled[1],
        }
    )
    return "\n".join(lines), rows


def _run_with_shuffled_numbering(facts, graph) -> Tuple[float, int]:
    """Algorithm 5 with per-method context numbers randomly permuted —
    destroying the contiguity Algorithm 4 provides while preserving the
    clone structure.  The IEC BDD is built tuple-by-tuple."""
    from ..analysis.base import load_datalog_source, make_solver
    from ..analysis.context_sensitive import ContextSensitiveAnalysis

    entry_m = facts.method_id(facts.program.entry.qualified)
    numbering = number_call_graph(graph, entries=[entry_m])
    c_size = numbering.context_domain_size()
    if c_size > 100_000:
        raise ValueError(
            "randomized numbering requires explicit tuple enumeration; "
            f"refusing {c_size} contexts (use a smaller corpus entry)"
        )
    rng = random.Random(42)
    perms: Dict[int, List[int]] = {}

    def perm(method: int) -> List[int]:
        p = perms.get(method)
        if p is None:
            k = numbering.num_contexts(method)
            p = [0] + rng.sample(range(1, c_size), k)
            perms[method] = p
        return p

    start = time.monotonic()
    source = load_datalog_source("algorithm5")
    solver = make_solver(facts, source, size_overrides={"C": c_size})
    tuples = []
    for rng_edge in numbering.ranges:
        caller_perm = perm(rng_edge.caller)
        callee_perm = perm(rng_edge.callee)
        for x in range(rng_edge.lo, rng_edge.hi + 1):
            if rng_edge.collapse_to is not None:
                y = rng_edge.collapse_to
            else:
                y = x + rng_edge.delta
            tuples.append(
                (caller_perm[x], rng_edge.site, callee_perm[y], rng_edge.callee)
            )
    for method, sites in facts.alloc_sites.items():
        method_perm = perm(method)
        for h in sites:
            for c in range(1, numbering.num_contexts(method) + 1):
                tuples.append((method_perm[c], h, method_perm[c], method))
    for c in range(c_size):
        tuples.append((c, facts.global_site, c, entry_m))
    solver.add_tuples("IEC", tuples)
    mc_tuples = []
    for method in numbering.counts:
        method_perm = perm(method)
        for c in range(1, numbering.num_contexts(method) + 1):
            mc_tuples.append((method_perm[c], method))
    solver.add_tuples("MC", mc_tuples)
    solver.solve()
    return (time.monotonic() - start, solver.manager.peak_nodes)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figure",
        choices=[
            "fig3", "fig4", "fig5", "fig6", "scaling", "ablation", "all",
            "report",
        ],
    )
    parser.add_argument("--small", action="store_true", help="fast subset")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--timeout", type=float, metavar="SECONDS",
        help="wall-clock budget per analysis run",
    )
    parser.add_argument(
        "--node-budget", type=int, metavar="N",
        help="live BDD node budget per analysis run",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="directory for mid-solve checkpoints of budgeted runs",
    )
    parser.add_argument(
        "--isolate", action="store_true",
        help="run each corpus entry in a supervised worker process "
        "(crashes are classified and skipped, not fatal)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="parallel workers in --isolate mode (default 2)",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="retries per crashed entry in --isolate mode (default 1)",
    )
    parser.add_argument(
        "--memory-limit", type=int, metavar="MB",
        help="hard RLIMIT_AS cap per worker in --isolate mode",
    )
    parser.add_argument(
        "--deadline", type=float, metavar="SECONDS",
        help="hard per-entry wall clock in --isolate mode "
        "(SIGTERM then SIGKILL)",
    )
    parser.add_argument(
        "--entries", metavar="NAME,NAME",
        help="run only these corpus entries (comma-separated)",
    )
    parser.add_argument(
        "--backend", metavar="NAME",
        help="BDD kernel backend (default: $REPRO_BDD_BACKEND or "
        "'reference'); see repro.bdd.api.available_backends",
    )
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    figures = (
        ["fig3", "fig4", "fig5", "fig6", "scaling", "ablation"]
        if args.figure == "all"
        else [args.figure]
    )
    entries = None
    if args.entries:
        entries = [n.strip() for n in args.entries.split(",") if n.strip()]
    runs = None
    crashed = False
    if args.figure == "report" or any(
        f in figures for f in ("fig3", "fig4", "fig5", "fig6")
    ):
        print("Running corpus ...", flush=True)
        if args.isolate:
            runs, records = run_corpus_supervised(
                names=entries,
                small=args.small,
                timeout=args.timeout,
                node_budget=args.node_budget,
                checkpoint_dir=args.checkpoint_dir,
                jobs=args.jobs,
                retries=args.retries,
                memory_limit_mb=args.memory_limit,
                deadline=args.deadline,
                backend=args.backend,
            )
            crashed = any(not r["ok"] for r in records)
            bench_json = out / "BENCH_supervised.json"
            bench_json.write_text(
                json.dumps(
                    {
                        "entries": records,
                        "runs": [r.to_dict() for r in runs],
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
            print(f"wrote {bench_json}", flush=True)
        else:
            runs = run_corpus(
                small=args.small,
                timeout=args.timeout,
                node_budget=args.node_budget,
                checkpoint_dir=args.checkpoint_dir,
                names=entries,
                backend=args.backend,
            )
        if not runs:
            print("no corpus entry finished within the budget")
            return 70 if crashed else 75
    if args.figure == "report":
        from .report import build_report

        extra = {}
        scaling_text, _ = scaling_table()
        extra["Section 6.2 — scaling"] = scaling_text
        ablation_text, _ = ablation_table()
        extra["Ablations"] = ablation_text
        text = build_report(runs, extra_sections=extra)
        print(text)
        (out / "report.md").write_text(text)
        return 70 if crashed else 0
    for figure in figures:
        if figure == "scaling":
            text, _ = scaling_table()
        elif figure == "ablation":
            text, _ = ablation_table()
        else:
            text, _ = {
                "fig3": fig3_table,
                "fig4": fig4_table,
                "fig5": fig5_table,
                "fig6": fig6_table,
            }[figure](runs)
        print()
        print(text)
        (out / f"{figure}.txt").write_text(text + "\n")
    return 70 if crashed else 0


if __name__ == "__main__":
    raise SystemExit(main())
