"""Microbenchmarks for the pluggable BDD kernels (-> BENCH_kernel.json).

Two layers of measurement, both run under every backend being compared:

* **Per-op microbenchmarks** on synthetic transition-relation workloads
  (the shape the solver actually produces: a relation ``R(x, x')`` over
  interleaved variables, frontier sets ``S(x)``, and the
  ``rel_prod`` / ``replace`` / ``exist`` loop of semi-naive iteration).
  Each op is measured in two regimes: ``cold`` (operation caches cleared
  before every call — the full recursive build) and ``warm`` (the same
  call repeated — the public-entry + cache-probe path that dominates
  once the fixpoint loop revisits stable relations).
* **Whole-solve wall clock**: the context-sensitive analysis
  (Algorithm 5) on real corpus entries.

The JSON artifact records the measured seconds and the
reference/<backend> speedup ratio for every cell; nothing is projected
or extrapolated.  Run with::

    python -m repro.bench.kernel_bench --out results
"""

from __future__ import annotations

import json
import pathlib
import platform
import random
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..bdd.api import BddKernel, create_kernel

__all__ = ["bench_ops", "bench_solves", "run_kernel_bench", "main"]

DEFAULT_BACKENDS = ("reference", "packed", "arena")

# Synthetic workload shape: k-bit state space, R(x, x') interleaved.
_BITS = 12
_EDGES = 220
_SEEDS = (11, 23, 47)


def _levels(bits: int) -> Tuple[List[int], List[int]]:
    """Interleaved x / x' level blocks (x_i at 2i, x'_i at 2i+1)."""
    return [2 * i for i in range(bits)], [2 * i + 1 for i in range(bits)]


def _encode(m: BddKernel, value: int, levels: Sequence[int]) -> int:
    lits = [
        (lvl, bool((value >> (len(levels) - 1 - i)) & 1))
        for i, lvl in enumerate(levels)
    ]
    return m.cube(lits)


def _workload(m: BddKernel, seed: int) -> Dict[str, int]:
    """Build one deterministic transition system in ``m``."""
    rng = random.Random(seed)
    x, xp = _levels(_BITS)
    space = 1 << _BITS
    r = 0
    for _ in range(_EDGES):
        a, b = rng.randrange(space), rng.randrange(space)
        edge = m.and_(_encode(m, a, x), _encode(m, b, xp))
        r = m.or_(r, edge)
    s = 0
    for _ in range(40):
        s = m.or_(s, _encode(m, rng.randrange(space), x))
    return {
        "R": r,
        "S": s,
        "varset": m.varset(x),
        "map": m.replace_map({b: a for a, b in zip(x, xp)}),
    }


def _time(fn, repeat: int) -> float:
    t0 = time.perf_counter()
    for _ in range(repeat):
        fn()
    return time.perf_counter() - t0


def bench_ops(
    backend: str, cold_repeat: int = 60, warm_budget_s: float = 0.35
) -> Dict[str, Dict[str, float]]:
    """Per-op cold/warm *per-call* seconds for one backend (averaged over
    seeds).  Warm repeats are calibrated per op so an expensive op (e.g.
    the uncached ``sat_count`` walk) does not blow up the wall clock;
    reporting per-call time keeps backends comparable regardless."""
    x, xp = _levels(_BITS)
    totals: Dict[str, Dict[str, List[float]]] = {}

    def record(op: str, regime: str, seconds: float, calls: int) -> None:
        cell = totals.setdefault(op, {})
        sec, n = cell.get(regime, (0.0, 0))
        cell[regime] = (sec + seconds, n + calls)

    for seed in _SEEDS:
        m = create_kernel(num_vars=2 * _BITS, backend=backend)
        w = _workload(m, seed)
        R, S, vs, mp = w["R"], w["S"], w["varset"], w["map"]
        ops = {
            "and": lambda: m.and_(R, S),
            "or": lambda: m.or_(R, S),
            "diff": lambda: m.diff(R, S),
            "exist": lambda: m.exist(R, vs),
            "rel_prod": lambda: m.rel_prod(S, R, vs),
            "replace": lambda: m.replace(m.rel_prod(S, R, vs), mp),
            # The fused superop the optimizer emits: one entry instead
            # of the rel_prod + replace pair above (same result).
            "rel_prod_replace": lambda: m.rel_prod_replace(S, R, vs, mp),
            "sat_count": lambda: m.sat_count(R, x + xp),
        }
        for op, fn in ops.items():
            cold = 0.0
            for _ in range(cold_repeat):
                m.clear_caches()
                cold += _time(fn, 1)
            record(op, "cold", cold, cold_repeat)
            m.clear_caches()
            once = _time(fn, 1)  # prime the caches
            repeat = max(50, min(50_000, int(warm_budget_s / max(once, 1e-7))))
            # Subtract the loop + closure dispatch overhead (timeit
            # style): both backends pay it identically, so leaving it in
            # would only dilute the warm-regime ratio toward 1.
            noop = lambda: None  # noqa: E731
            overhead = _time(noop, repeat)
            record(op, "warm", max(_time(fn, repeat) - overhead, 0.0), repeat)
        # One realistic reachability fixpoint (rel_prod + replace + or
        # until closure), cold per iteration like a growing frontier.
        m.clear_caches()
        t0 = time.perf_counter()
        reach = S
        while True:
            step = m.replace(m.rel_prod(reach, R, vs), mp)
            nxt = m.or_(reach, step)
            if nxt == reach:
                break
            reach = nxt
        record("reach_fixpoint", "cold", time.perf_counter() - t0, 1)
    # Average per-call seconds across the seeds.
    out: Dict[str, Dict[str, float]] = {}
    for op, cell in totals.items():
        out[op] = {
            regime: sec / calls for regime, (sec, calls) in cell.items()
        }
    return out


def _parse_solve_config(config: str):
    """``backend[+nofuse|+noopt]`` -> (backend, optimize, disabled)."""
    backend, _, suffix = config.partition("+")
    if suffix == "nofuse":
        return backend, None, ["fuse"]
    if suffix == "noopt":
        return backend, False, None
    if suffix in ("", "opt"):
        return backend, None, None
    raise ValueError(
        f"bad solve config {config!r}: expected backend, backend+nofuse "
        f"or backend+noopt"
    )


def bench_solves(
    config: str, entries: Sequence[str]
) -> Dict[str, Dict[str, Any]]:
    """Whole-program Algorithm 5 wall clock per corpus entry, plus the
    structural fingerprint of the solved relations: a cell only counts
    if every config under comparison produced the identical result."""
    import hashlib

    from ..analysis import ContextSensitiveAnalysis
    from ..bdd.serialize import dump_bdd_lines
    from ..ir.facts import extract_facts
    from .corpus import corpus_entry

    backend, optimize, disabled = _parse_solve_config(config)
    out: Dict[str, Dict[str, Any]] = {}
    for name in entries:
        facts = extract_facts(corpus_entry(name).build())
        t0 = time.monotonic()
        result = ContextSensitiveAnalysis(
            facts=facts, backend=backend, optimize=optimize,
            disabled_passes=disabled,
        ).run()
        seconds = round(time.monotonic() - t0, 3)
        solver = result.solver
        lines = []
        for rel in ("vPC", "hP"):
            chunk, _ = dump_bdd_lines(
                solver.manager, [solver.relation(rel).node]
            )
            lines.extend(chunk)
        out[name] = {
            "seconds": seconds,
            "peak_nodes": result.peak_nodes,
            "vPC": result.relation("vPC").count(),
            "fingerprint": hashlib.sha256(
                "\n".join(lines).encode()
            ).hexdigest()[:16],
        }
        del result
    return out


def _bench_solves_isolated(
    config: str, entries: Sequence[str], repeats: int
) -> Dict[str, Dict[str, Any]]:
    """Run ``bench_solves`` in fresh subprocesses, keeping the fastest
    repeat per entry.  In-process sequential solves pollute each other
    (allocator state, cache residue from earlier configs), so every
    timing comes from a process that has done nothing else."""
    import json
    import subprocess
    import sys

    code = (
        "import json, sys\n"
        "from repro.bench.kernel_bench import bench_solves\n"
        "print(json.dumps(bench_solves(sys.argv[1], sys.argv[2].split(','))))\n"
    )
    best: Dict[str, Dict[str, Any]] = {}
    for _ in range(max(1, repeats)):
        proc = subprocess.run(
            [sys.executable, "-c", code, config, ",".join(entries)],
            capture_output=True, text=True,
        )
        if proc.returncode:
            raise RuntimeError(
                f"isolated solve {config!r} failed:\n{proc.stderr[-2000:]}"
            )
        run = json.loads(proc.stdout.strip().splitlines()[-1])
        for name, cell in run.items():
            prev = best.get(name)
            if prev is None:
                best[name] = cell
            elif cell["fingerprint"] != prev["fingerprint"]:
                raise RuntimeError(
                    f"solve {config!r} is nondeterministic on {name!r}: "
                    f"{cell['fingerprint']} != {prev['fingerprint']}"
                )
            elif cell["seconds"] < prev["seconds"]:
                best[name] = cell
    return best


def _ratios(by_backend: Dict[str, float], base: str) -> Dict[str, float]:
    """reference-relative speedups (>1 means faster than ``base``)."""
    ref = by_backend.get(base)
    out = {}
    for be, seconds in by_backend.items():
        if be == base or not seconds or not ref:
            continue
        out[be] = round(ref / seconds, 3)
    return out


def run_kernel_bench(
    backends: Sequence[str] = DEFAULT_BACKENDS,
    entries: Sequence[str] = ("jetty", "gruntspud"),
    cold_repeat: int = 60,
    warm_budget_s: float = 0.35,
    solve_repeats: int = 2,
    verbose: bool = True,
) -> Dict[str, Any]:
    base = backends[0]
    micro: Dict[str, Any] = {}
    raw_ops = {}
    for be in backends:
        if verbose:
            print(f"micro: {be} ...", flush=True)
        raw_ops[be] = bench_ops(be, cold_repeat, warm_budget_s)
    for op in raw_ops[base]:
        micro[op] = {}
        for regime in raw_ops[base][op]:
            # Per-call microseconds, plus the baseline-relative speedup.
            cell = {
                be: round(raw_ops[be][op][regime] * 1e6, 3)
                for be in backends
            }
            cell["speedup"] = _ratios(
                {be: raw_ops[be][op][regime] for be in backends}, base
            )
            micro[op][regime] = cell

    # Whole-solve rows compare the backends under the default (fused)
    # plans against the baseline backend with fusion disabled — the
    # pre-superop execution model.  Each config runs in fresh isolated
    # subprocesses (min of ``solve_repeats``).  Every cell is gated on
    # fingerprint equality: a config that produced a structurally
    # different result would make its timing meaningless, so it fails
    # the run instead.
    solve_base = f"{base}+nofuse"
    solve_configs = [solve_base] + list(backends)
    solves: Dict[str, Any] = {}
    raw_solves = {}
    for cfg in solve_configs:
        if verbose:
            print(f"solve: {cfg} {list(entries)} x{solve_repeats} ...",
                  flush=True)
        raw_solves[cfg] = _bench_solves_isolated(cfg, entries, solve_repeats)
    for name in entries:
        prints = {
            cfg: raw_solves[cfg][name]["fingerprint"]
            for cfg in solve_configs
        }
        if len(set(prints.values())) != 1:
            raise RuntimeError(
                f"solve fingerprints diverged on {name!r}: {prints} — "
                f"timings withheld (fix the kernel, then re-run)"
            )
        cell: Dict[str, Any] = {
            cfg: raw_solves[cfg][name] for cfg in solve_configs
        }
        cell["fingerprints_identical"] = True
        cell["speedup"] = _ratios(
            {
                cfg: raw_solves[cfg][name]["seconds"]
                for cfg in solve_configs
            },
            solve_base,
        )
        solves[name] = cell

    return {
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "config": {
            "backends": list(backends),
            "baseline": base,
            "solve_baseline": solve_base,
            "solve_configs": solve_configs,
            "bits": _BITS,
            "edges": _EDGES,
            "seeds": list(_SEEDS),
            "cold_repeat": cold_repeat,
            "warm_budget_s": warm_budget_s,
            "solve_repeats": solve_repeats,
            "solve_isolation": "fresh subprocess per repeat, min kept",
            "microbench_unit": "microseconds per call",
        },
        "microbench": micro,
        "solves": solves,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--backends", default=",".join(DEFAULT_BACKENDS), metavar="A,B",
        help="backends to compare; the first is the baseline "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--entries", default="jetty,gruntspud", metavar="NAME,NAME",
        help="corpus entries for the whole-solve rows (default: %(default)s)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny repeat counts and the smallest corpus entry (CI)",
    )
    parser.add_argument(
        "--solve-repeats", type=int, default=2, metavar="N",
        help="isolated subprocess runs per solve config, min kept "
        "(default: %(default)s)",
    )
    args = parser.parse_args(argv)
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    entries = [n.strip() for n in args.entries.split(",") if n.strip()]
    kwargs: Dict[str, Any] = {"solve_repeats": args.solve_repeats}
    if args.smoke:
        kwargs = {"cold_repeat": 3, "warm_budget_s": 0.02, "solve_repeats": 1}
        entries = ["freetts"]
    data = run_kernel_bench(backends=backends, entries=entries, **kwargs)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    artifact = out / "BENCH_kernel.json"
    artifact.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {artifact}")
    for op, regimes in data["microbench"].items():
        for regime, cell in regimes.items():
            print(f"  {op:<14} {regime:<5} {cell}")
    for name, cell in data["solves"].items():
        print(f"  solve {name}: {cell}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
