"""Combined markdown report over the regenerated figures.

Collects the ``results/*.txt`` tables produced by the harness (or
regenerates them) into one document with the qualitative checks the
benchmarks assert, suitable for dropping into an issue or a paper-repro
registry entry.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .corpus import corpus_entry
from .harness import (
    BenchmarkRun,
    fig3_table,
    fig4_table,
    fig5_table,
    fig6_table,
)

__all__ = ["ReportCheck", "qualitative_checks", "build_report"]


@dataclass(frozen=True)
class ReportCheck:
    """One qualitative claim from the paper, checked against a run."""

    claim: str
    passed: bool
    detail: str = ""


def qualitative_checks(runs: Sequence[BenchmarkRun]) -> List[ReportCheck]:
    """Evaluate the paper's headline claims on a set of benchmark runs."""
    checks: List[ReportCheck] = []

    paths = [r.paths for r in runs]
    methods = [r.stats["methods"] for r in runs]
    checks.append(
        ReportCheck(
            claim="Reduced call paths grow exponentially past 10^6",
            passed=max(paths) > 10**6,
            detail=f"max paths {max(paths):.3g} over {max(methods)} methods",
        )
    )

    cs_most_expensive = all(
        r.alg5[0] >= max(r.alg1[0], r.alg2[0], r.alg7[0]) * 0.8 for r in runs
    )
    checks.append(
        ReportCheck(
            claim="Context-sensitive pointer analysis dominates cost",
            passed=cs_most_expensive,
        )
    )

    type_cheaper = all(r.alg6[0] <= r.alg5[0] * 1.1 for r in runs)
    checks.append(
        ReportCheck(
            claim="Context-sensitive type analysis cheaper than pointers",
            passed=type_cheaper,
        )
    )

    singles_ok = True
    for r in runs:
        entry = corpus_entry(r.name)
        if entry.params.threads == 0 and r.escape_summary["escaped"] != 1:
            singles_ok = False
    checks.append(
        ReportCheck(
            claim="Single-threaded programs: exactly one escaped object",
            passed=singles_ok,
        )
    )

    precision_ok = all(
        r.refinement["ci_nofilter"][0]
        >= r.refinement["ci_filter"][0]
        >= r.refinement["cs_pointer_proj"][0]
        >= r.refinement["cs_pointer_full"][0]
        for r in runs
    )
    checks.append(
        ReportCheck(
            claim="Precision lattice: no-filter >= filter >= projected >= full",
            passed=precision_ok,
        )
    )

    headline = all(r.refinement["cs_pointer_full"][0] <= 1.0 for r in runs)
    checks.append(
        ReportCheck(
            claim="Full CS pointer analysis: multi-typed variables <= 1%",
            passed=headline,
        )
    )
    return checks


def build_report(
    runs: Sequence[BenchmarkRun],
    extra_sections: Optional[Dict[str, str]] = None,
) -> str:
    """One markdown document: tables, then the claim checklist."""
    lines: List[str] = [
        "# Reproduction report — Whaley & Lam, PLDI 2004",
        "",
        f"Corpus entries measured: {', '.join(r.name for r in runs)}",
        "",
    ]
    for title, fn in (
        ("Figure 3 — benchmark vitals", fig3_table),
        ("Figure 4 — analysis time and memory", fig4_table),
        ("Figure 5 — escape analysis", fig5_table),
        ("Figure 6 — type refinement precision", fig6_table),
    ):
        text, _ = fn(runs)
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(text)
        lines.append("```")
        lines.append("")
    for title, body in (extra_sections or {}).items():
        lines.append(f"## {title}")
        lines.append("")
        lines.append("```")
        lines.append(body.rstrip())
        lines.append("```")
        lines.append("")
    lines.append("## Claim checklist")
    lines.append("")
    for check in qualitative_checks(runs):
        mark = "x" if check.passed else " "
        suffix = f" — {check.detail}" if check.detail else ""
        lines.append(f"- [{mark}] {check.claim}{suffix}")
    lines.append("")
    return "\n".join(lines)
