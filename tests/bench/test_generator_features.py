"""Tests for the extended generator knobs (exceptions, statics, clinit)."""

import pytest

from repro.analysis import ContextInsensitiveAnalysis
from repro.bench.generator import WorkloadParams, generate_program
from repro.ir import extract_facts
from repro.ir.facts import GLOBAL, THROWN


def build(**kwargs):
    return generate_program(WorkloadParams(seed=11, layers=5, **kwargs))


class TestExceptionWorkloads:
    def test_throws_present(self):
        program = build(use_exceptions=True)
        facts = extract_facts(program)
        assert facts.relations["Mthr"]

    def test_exceptions_reach_main(self):
        program = build(use_exceptions=True)
        result = ContextInsensitiveAnalysis(program=program).run()
        got = result.points_to("Main.main", THROWN)
        assert any("WorkError" in h for h in got)

    def test_default_has_no_exceptions(self):
        facts = extract_facts(build())
        assert facts.relations["Mthr"] == []


class TestStaticWorkloads:
    def test_global_traffic(self):
        program = build(use_statics=True)
        facts = extract_facts(program)
        g = facts.id_of("V", GLOBAL)
        assert any(v == g for v, _f, _s in facts.relations["store"])
        result = ContextInsensitiveAnalysis(program=program).run()
        # Something flows through the registry into a layer method.
        cached = result.points_to("Layers.m0x0", "cached")
        assert cached

    def test_clinit_entry(self):
        program = build(use_clinit=True)
        names = [m.qualified for m in program.entry_methods()]
        assert "Registry.clinit" in names
        result = ContextInsensitiveAnalysis(program=program).run()
        # Analyses see the initializer's seed object in the registry.
        facts = result.facts
        seed_heaps = [h for h in facts.maps["H"] if "Registry.clinit" in h]
        assert seed_heaps

    def test_combined_features_validate(self):
        program = build(
            use_exceptions=True, use_statics=True, use_clinit=True, threads=2
        )
        program.validate()
        result = ContextInsensitiveAnalysis(program=program).run()
        assert not result.relation("vP").is_empty()
