"""Tests for the markdown report and escape specialization APIs."""

import pytest

from repro.bench.harness import run_benchmark
from repro.bench.report import ReportCheck, build_report, qualitative_checks


@pytest.fixture(scope="module")
def runs():
    return [run_benchmark("freetts"), run_benchmark("jetty")]


class TestReport:
    def test_checks_pass_on_corpus(self, runs):
        checks = qualitative_checks(runs)
        assert checks
        failed = [c for c in checks if not c.passed]
        assert failed == [], f"failing claims: {[c.claim for c in failed]}"

    def test_build_report_structure(self, runs):
        text = build_report(runs)
        assert "# Reproduction report" in text
        assert "Figure 3" in text and "Figure 6" in text
        assert "- [x]" in text
        assert "freetts" in text and "jetty" in text

    def test_extra_sections_rendered(self, runs):
        text = build_report(runs, extra_sections={"Custom": "hello world"})
        assert "## Custom" in text
        assert "hello world" in text


class TestSyncSpecialization:
    def test_per_context_syncs(self):
        from repro.analysis import ThreadEscapeAnalysis
        from repro.ir import parse_program

        source = """
class Worker extends Thread {
    method run() {
        seen = Main.channel;
        sync seen;
    }
}
class Main {
    static field channel : Object;
    static method main() {
        o = new Object;
        Main.channel = o;
        w = new Worker;
        w.start();
        private = new Object;
        sync private;
    }
}
"""
        result = ThreadEscapeAnalysis(
            program=parse_program(source, include_library=False)
        ).run()
        spec = result.sync_specialization()
        # The private sync is needed in no context at all.
        private = next(name for name in spec if "private" in name)
        assert not any(spec[private].values())
        # The shared sync is needed in at least one thread context.
        shared = next(name for name in spec if "seen" in name)
        assert any(spec[shared].values())

    def test_context_count(self):
        from repro.analysis import ThreadEscapeAnalysis
        from repro.ir import parse_program

        source = """
class W extends Thread {
    method run() {
        o = new Object;
    }
}
class Main {
    static method main() {
        w = new W;
        w.start();
    }
}
"""
        result = ThreadEscapeAnalysis(
            program=parse_program(source, include_library=False)
        ).run()
        # global + main + two clones of the one creation site.
        assert result.thread_contexts_count() == 4
