"""Tests for the workload generator, corpus, and harness plumbing."""

import pytest

from repro.bench.corpus import CORPUS, SMALL_SUBSET, corpus_entry, corpus_names
from repro.bench.generator import WorkloadParams, generate_program
from repro.ir import extract_facts
from repro.callgraph import cha_call_graph, number_call_graph
from repro.analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis


class TestGenerator:
    def test_deterministic(self):
        p = WorkloadParams(seed=5, layers=6)
        a = generate_program(p)
        b = generate_program(p)
        assert a.stats() == b.stats()
        assert sorted(a.classes) == sorted(b.classes)

    def test_different_seeds_differ(self):
        a = generate_program(WorkloadParams(seed=1, layers=8, width=3))
        b = generate_program(WorkloadParams(seed=2, layers=8, width=3))
        facts_a = extract_facts(a)
        facts_b = extract_facts(b)
        # Same shape, but the rng-chosen call targets differ.
        assert facts_a.relations["actual"] != facts_b.relations["actual"] or (
            facts_a.relations["IE0"] != facts_b.relations["IE0"]
        )

    def test_programs_validate(self):
        for layers in (3, 6, 10):
            program = generate_program(WorkloadParams(seed=0, layers=layers))
            program.validate()

    def test_layers_control_size(self):
        small = generate_program(WorkloadParams(seed=0, layers=4))
        large = generate_program(WorkloadParams(seed=0, layers=12))
        assert large.stats()["methods"] > small.stats()["methods"]

    def test_threads_parameter(self):
        no_threads = generate_program(WorkloadParams(seed=0, layers=4, threads=0))
        threaded = generate_program(WorkloadParams(seed=0, layers=4, threads=2))
        assert "Worker0" not in no_threads.classes
        assert "Worker0" in threaded.classes and "Worker1" in threaded.classes

    def test_path_count_exponential_in_layers(self):
        counts = []
        for layers in (6, 10, 14):
            program = generate_program(
                WorkloadParams(seed=3, layers=layers, width=2, fanout=2)
            )
            facts = extract_facts(program)
            ci = ContextInsensitiveAnalysis(facts=facts).run()
            entry = facts.method_id("Main.main")
            numbering = number_call_graph(
                ci.discovered_call_graph, entries=[entry]
            )
            counts.append(numbering.max_paths())
        assert counts[0] < counts[1] < counts[2]
        assert counts[2] > 50 * counts[0]

    def test_recursion_creates_scc(self):
        program = generate_program(
            WorkloadParams(seed=0, layers=4, recursion_cliques=1)
        )
        facts = extract_facts(program)
        graph = cha_call_graph(facts)
        sccs = [c for c in graph.sccs() if len(c) > 1]
        assert sccs, "the recursion clique should form a non-trivial SCC"

    def test_no_library_variant(self):
        program = generate_program(
            WorkloadParams(seed=0, layers=4, use_library=False)
        )
        assert "String" not in program.classes
        program.validate()


class TestCorpus:
    def test_21_entries_in_figure3_order(self):
        assert len(CORPUS) == 21
        assert CORPUS[0].name == "freetts"
        assert CORPUS[8].name == "pmd"
        assert CORPUS[-1].name == "gruntspud"

    def test_names_unique(self):
        names = [e.name for e in CORPUS]
        assert len(set(names)) == 21

    def test_small_subset_is_subset(self):
        names = set(corpus_names())
        assert set(SMALL_SUBSET) <= names
        assert corpus_names(small=True) == SMALL_SUBSET

    def test_single_threaded_entries_match_figure5(self):
        # freetts, openwfe and pmd report exactly one escaped object in
        # Figure 5 — they must be generated single-threaded.
        for name in ("freetts", "openwfe", "pmd"):
            assert corpus_entry(name).params.threads == 0
        for name in ("nfcchat", "jetty", "azureus"):
            assert corpus_entry(name).params.threads > 0

    def test_entries_build(self):
        program = corpus_entry("freetts").build()
        program.validate()
        assert program.stats()["methods"] > 20

    def test_unknown_entry(self):
        with pytest.raises(KeyError):
            corpus_entry("nosuch")

    def test_pmd_has_most_paths_per_method(self):
        # The pmd phenomenon: path count out of proportion to size.
        pmd = corpus_entry("pmd")
        jboss = corpus_entry("jboss")
        assert pmd.params.layers > 2 * jboss.params.layers


class TestHarnessSmall:
    @pytest.fixture(scope="class")
    def freetts_run(self):
        from repro.bench.harness import run_benchmark

        return run_benchmark("freetts")

    def test_run_benchmark_fields(self, freetts_run):
        r = freetts_run
        assert r.name == "freetts"
        assert r.paths >= 1
        assert r.alg1[0] > 0 and r.alg5[0] > 0
        assert r.alg3_iterations >= 2

    def test_figure_tables_render(self, freetts_run):
        from repro.bench.harness import (
            fig3_table,
            fig4_table,
            fig5_table,
            fig6_table,
        )

        for fn in (fig3_table, fig4_table, fig5_table, fig6_table):
            text, rows = fn([freetts_run])
            assert "freetts" in text
            assert rows and rows[0]["name"] == "freetts"

    def test_escape_single_threaded_only_global(self, freetts_run):
        assert freetts_run.escape_summary["escaped"] == 1
        assert freetts_run.escape_summary["sync_needed"] == 0

    def test_precision_ordering(self, freetts_run):
        ref = freetts_run.refinement
        assert ref["ci_nofilter"][0] >= ref["ci_filter"][0]
        assert ref["ci_filter"][0] >= ref["cs_pointer_proj"][0]
        assert ref["cs_pointer_proj"][0] >= ref["cs_pointer_full"][0]

    def test_cost_ordering(self, freetts_run):
        """Figure 4's qualitative shape: the context-sensitive pointer
        analysis is the most expensive; the type analysis is cheaper."""
        r = freetts_run
        assert r.alg5[0] >= r.alg6[0] * 0.5  # type analysis not slower
        assert r.alg5[1] >= r.alg2[1]        # CS uses more memory than CI
