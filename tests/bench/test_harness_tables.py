"""Fast unit tests for table formatting (synthetic BenchmarkRun data —
no analyses are executed)."""

import pytest

from repro.bench.harness import (
    BenchmarkRun,
    _sci,
    fig3_table,
    fig4_table,
    fig5_table,
    fig6_table,
)
from repro.bench.report import build_report, qualitative_checks


def make_run(name="synthetic", paths=10**12, threads=True):
    refinement = {
        "ci_nofilter": (20.0, 15.0),
        "ci_filter": (17.0, 15.0),
        "cs_pointer_proj": (0.3, 19.0),
        "cs_type_proj": (2.0, 19.0),
        "cs_pointer_full": (0.0, 19.0),
        "cs_type_full": (1.9, 19.0),
    }
    return BenchmarkRun(
        name=name,
        stats={"classes": 20, "methods": 80, "statements": 700, "allocs": 130},
        num_vars=650,
        paths=paths,
        alg1=(0.2, 60_000),
        alg2=(0.25, 70_000),
        alg3=(0.5, 90_000),
        alg3_iterations=30,
        alg5=(1.5, 230_000),
        alg6=(0.8, 150_000),
        alg7=(0.3, 90_000),
        escape_summary={
            "captured": 100,
            "escaped": 4 if threads else 1,
            "sync_unneeded": 2,
            "sync_needed": 3 if threads else 0,
        },
        refinement=refinement,
    )


class TestSciFormat:
    def test_small_numbers_verbatim(self):
        assert _sci(0) == "0"
        assert _sci(999) == "999"

    def test_large_numbers_scientific(self):
        assert _sci(1_000_000) == "1e6"
        assert _sci(5 * 10**23) == "5e23"

    def test_rounding(self):
        assert _sci(9_400_000) == "9e6"


class TestTables:
    def test_fig3_columns(self):
        text, rows = fig3_table([make_run()])
        assert "synthetic" in text
        assert "1e12" in text
        assert rows[0]["paths"] == 10**12

    def test_fig4_columns(self):
        text, rows = fig4_table([make_run()])
        assert "synthetic" in text
        assert rows[0]["alg3_iterations"] == 30
        # Memory shown in MB at 16 B/node.
        assert f"{230_000 * 16 / 1e6:.1f}" in text

    def test_fig5_columns(self):
        text, rows = fig5_table([make_run()])
        assert rows[0]["captured"] == 100

    def test_fig6_columns(self):
        text, rows = fig6_table([make_run()])
        assert "full CS ptr" in text
        assert rows[0]["cs_pointer_full"] == (0.0, 19.0)

    def test_multiple_rows(self):
        runs = [make_run("a"), make_run("b", paths=510)]
        for fn in (fig3_table, fig4_table, fig5_table, fig6_table):
            text, rows = fn(runs)
            assert len(rows) == 2
            assert "a" in text and "b" in text


class TestReportOnSyntheticData:
    def test_checks_on_good_data(self):
        # Use a real corpus name so the threadedness lookup works.
        runs = [make_run("jetty")]
        checks = qualitative_checks(runs)
        assert all(c.passed for c in checks)

    def test_checks_flag_bad_escape(self):
        run = make_run("freetts", threads=True)  # freetts is single-threaded
        checks = qualitative_checks([run])
        escape_check = next(c for c in checks if "Single-threaded" in c.claim)
        assert not escape_check.passed

    def test_report_renders(self):
        text = build_report([make_run("jetty")])
        assert "Claim checklist" in text
