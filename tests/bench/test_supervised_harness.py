"""Supervised (process-isolated) corpus runs: serialization round-trip,
equality with the serial in-process path, and poisoned-entry isolation.
"""

import json

import pytest

from repro.bench.harness import (
    BenchmarkRun,
    run_benchmark,
    run_corpus_supervised,
)

ENTRY = "freetts"  # smallest corpus entry: keeps the subprocess runs fast


@pytest.fixture(scope="module")
def serial_run():
    return run_benchmark(ENTRY)


class TestSerialization:
    def test_round_trip_through_json(self, serial_run):
        data = json.loads(json.dumps(serial_run.to_dict()))
        back = BenchmarkRun.from_dict(data)
        assert back == serial_run  # dataclass equality, tuples restored
        assert isinstance(back.alg5, tuple)
        assert all(isinstance(v, tuple) for v in back.refinement.values())


class TestSupervisedCorpus:
    def test_isolated_equals_serial(self, serial_run):
        runs, records = run_corpus_supervised(
            names=[ENTRY], jobs=1, retries=0, verbose=False
        )
        assert len(runs) == 1 and records[0]["ok"]
        run = runs[0]
        # Everything except wall-clock timing must match the in-process
        # run exactly — isolation may not change any answer.
        assert run.stats == serial_run.stats
        assert run.num_vars == serial_run.num_vars
        assert run.paths == serial_run.paths
        assert run.alg3_iterations == serial_run.alg3_iterations
        assert run.refinement == serial_run.refinement
        assert run.escape_summary == serial_run.escape_summary
        assert run.degraded == serial_run.degraded

    def test_overhead_recorded(self):
        runs, records = run_corpus_supervised(
            names=[ENTRY], jobs=1, retries=0, verbose=False
        )
        rec = records[0]
        assert rec["ok"]
        assert rec["wall_seconds"] > 0
        assert rec["isolation_overhead_s"] >= 0
        assert rec["solve_seconds"] <= rec["wall_seconds"]

    def test_poisoned_entry_does_not_stop_corpus(self):
        runs, records = run_corpus_supervised(
            names=[ENTRY, "jetty"], jobs=2, retries=0, verbose=False,
            entry_env={"jetty": {"REPRO_FAULT": "abort@solver.stratum"}},
        )
        assert [r.name for r in runs] == [ENTRY]
        by_name = {r["name"]: r for r in records}
        assert by_name[ENTRY]["ok"]
        assert not by_name["jetty"]["ok"]
        assert by_name["jetty"]["classification"] == "abort"
