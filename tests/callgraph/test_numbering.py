"""Tests for SCCs, CHA call graphs, and Algorithm 4 path numbering —
including the paper's Figure 1/2 worked example."""

import pytest

from repro.bdd import BDD, Domain, bits_for
from repro.callgraph import CallGraph, number_call_graph


def decode_iec(mgr, c0, i0, c1, m0, node):
    out = set()
    levels = list(c0.levels) + list(i0.levels) + list(c1.levels) + list(m0.levels)
    for bits in mgr.iter_assignments(node, levels):
        pos = 0
        vals = []
        for dom in (c0, i0, c1, m0):
            vals.append(dom.decode(bits[pos : pos + dom.bits]))
            pos += dom.bits
        out.add(tuple(vals))
    return out


class TestCallGraph:
    def test_multigraph_edges(self):
        g = CallGraph()
        g.add_edge(10, 1, 2)
        g.add_edge(11, 1, 2)
        assert g.edge_count() == 2
        assert g.call_targets(10) == {2}

    def test_scc_cycle(self):
        g = CallGraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        g.add_edge(2, 3, 2)
        comps = {frozenset(c) for c in g.sccs()}
        assert frozenset({2, 3}) in comps
        assert frozenset({1}) in comps

    def test_condensation_topological(self):
        g = CallGraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 3)
        comp_of, comps = g.condensation()
        assert comp_of[1] < comp_of[2] < comp_of[3]

    def test_reachable(self):
        g = CallGraph(methods=[1, 2, 3, 4])
        g.add_edge(0, 1, 2)
        g.add_edge(1, 3, 4)
        assert g.reachable_from([1]) == {1, 2}


class TestFigure1Example:
    """The paper's Example 1/2: M2 and M3 form an SCC; M6 has 6 contexts."""

    def make(self):
        # Methods 1..6; edges named a..i as in Figure 1.
        g = CallGraph()
        g.add_edge(ord("a"), 1, 2)  # a: M1 -> M2
        g.add_edge(ord("b"), 1, 3)  # b: M1 -> M3
        g.add_edge(ord("c"), 2, 3)  # c: M2 -> M3 (in SCC)
        g.add_edge(ord("d"), 3, 2)  # d: M3 -> M2 (in SCC)
        g.add_edge(ord("e"), 2, 4)  # e: M2 -> M4
        g.add_edge(ord("f"), 3, 4)  # f: M3 -> M4
        g.add_edge(ord("g"), 3, 5)  # g: M3 -> M5
        g.add_edge(ord("h"), 4, 6)  # h: M4 -> M6
        g.add_edge(ord("i"), 5, 6)  # i: M5 -> M6
        return g

    def test_context_counts_match_paper(self):
        numbering = number_call_graph(self.make(), entries=[1])
        assert numbering.num_contexts(1) == 1
        # "The strongly connected component is reached by two edges from
        # M1 ... we create two clones."
        assert numbering.num_contexts(2) == 2
        assert numbering.num_contexts(3) == 2
        # "Thus M4 has four clones."
        assert numbering.num_contexts(4) == 4
        # "Method M5 has two clones."
        assert numbering.num_contexts(5) == 2
        # "Finally, method M6 has six clones."
        assert numbering.num_contexts(6) == 6

    def test_max_paths(self):
        numbering = number_call_graph(self.make(), entries=[1])
        assert numbering.max_paths() == 6

    def test_scc_members_share_counts(self):
        numbering = number_call_graph(self.make(), entries=[1])
        assert numbering.exact_counts[2] == numbering.exact_counts[3]

    def test_intra_scc_edges_are_identity(self):
        numbering = number_call_graph(self.make(), entries=[1])
        intra = [
            r for r in numbering.ranges
            if {r.caller, r.callee} == {2, 3} and r.delta == 0
        ]
        assert len(intra) == 2  # edges c and d
        for r in intra:
            assert (r.lo, r.hi) == (1, 2)

    def test_clone_ranges_contiguous(self):
        numbering = number_call_graph(self.make(), entries=[1])
        # M6's incoming edges partition 1..6: h maps M4's 4 contexts to
        # 1..4, i maps M5's 2 contexts to 5..6 (visit order h then i).
        into6 = sorted(
            (r.delta, r.lo, r.hi) for r in numbering.ranges if r.callee == 6
        )
        covered = set()
        for delta, lo, hi in into6:
            covered.update(range(lo + delta, hi + delta + 1))
        assert covered == {1, 2, 3, 4, 5, 6}

    def test_iec_bdd_matches_ranges(self):
        numbering = number_call_graph(self.make(), entries=[1])
        csize = numbering.context_domain_size()
        cbits = bits_for(csize)
        mgr = BDD(num_vars=2 * cbits + 16)
        c0 = Domain(mgr, "C0", csize, list(range(0, 2 * cbits, 2)))
        c1 = Domain(mgr, "C1", csize, list(range(1, 2 * cbits, 2)))
        i0 = Domain(mgr, "I0", 256, list(range(2 * cbits, 2 * cbits + 8)))
        m0 = Domain(mgr, "M0", 256, list(range(2 * cbits + 8, 2 * cbits + 16)))
        node = numbering.build_iec(mgr, c0, i0, c1, m0)
        tuples = decode_iec(mgr, c0, i0, c1, m0, node)
        # Edge h: M4's contexts 1..4 -> M6's contexts 1..4.
        for c in range(1, 5):
            assert (c, ord("h"), c, 6) in tuples
        # Edge i: M5's contexts 1..2 -> M6's contexts 5..6.
        assert (1, ord("i"), 5, 6) in tuples
        assert (2, ord("i"), 6, 6) in tuples
        # Intra-SCC identity on c and d.
        assert (1, ord("c"), 1, 3) in tuples and (2, ord("c"), 2, 3) in tuples
        assert (1, ord("d"), 1, 2) in tuples and (2, ord("d"), 2, 2) in tuples


class TestNumberingProperties:
    def test_diamond_doubles_paths(self):
        # Layered diamonds: each layer doubles the path count.
        g = CallGraph()
        site = 0
        layers = 10
        for layer in range(layers):
            a, b, c, d = layer * 3 + 1, layer * 3 + 2, layer * 3 + 3, layer * 3 + 4
            for src, dst in [(a, b), (a, c), (b, d), (c, d)]:
                g.add_edge(site, src, dst)
                site += 1
        numbering = number_call_graph(g, entries=[1])
        assert numbering.max_paths() == 2 ** layers

    def test_cap_merges_overflow(self):
        g = CallGraph()
        site = 0
        for layer in range(6):
            a, b, c, d = layer * 3 + 1, layer * 3 + 2, layer * 3 + 3, layer * 3 + 4
            for src, dst in [(a, b), (a, c), (b, d), (c, d)]:
                g.add_edge(site, src, dst)
                site += 1
        capped = number_call_graph(g, entries=[1], cap=15)
        assert capped.max_paths() == 64  # exact counts still exact
        assert max(capped.counts.values()) == 15
        assert any(r.collapse_to == 15 for r in capped.ranges)

    def test_recursion_reduces_to_scc(self):
        # main -> f, f -> f (self-recursive), f -> g.
        g = CallGraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 2, 2)
        g.add_edge(2, 2, 3)
        numbering = number_call_graph(g, entries=[1])
        assert numbering.num_contexts(2) == 1
        assert numbering.num_contexts(3) == 1
        # The self-edge is an identity range.
        self_edges = [r for r in numbering.ranges if r.caller == 2 and r.callee == 2]
        assert self_edges and self_edges[0].delta == 0

    def test_unreached_methods_get_singleton(self):
        g = CallGraph(methods=[1, 2, 99])
        g.add_edge(0, 1, 2)
        numbering = number_call_graph(g, entries=[1])
        assert numbering.num_contexts(99) == 1

    def test_mc_relation(self):
        g = CallGraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 1, 2)
        numbering = number_call_graph(g, entries=[1])
        assert numbering.num_contexts(2) == 2
        csize = numbering.context_domain_size()
        cbits = bits_for(csize)
        mgr = BDD(num_vars=cbits + 3)
        c0 = Domain(mgr, "C0", csize, list(range(cbits)))
        m0 = Domain(mgr, "M0", 8, [cbits, cbits + 1, cbits + 2])
        node = numbering.build_mc(mgr, c0, m0)
        tuples = set()
        levels = list(c0.levels) + list(m0.levels)
        for bits in mgr.iter_assignments(node, levels):
            tuples.add((c0.decode(bits[:cbits]), m0.decode(bits[cbits:])))
        assert (1, 1) in tuples
        assert (1, 2) in tuples and (2, 2) in tuples
        assert (3, 2) not in tuples

    def test_global_site_full_range(self):
        g = CallGraph()
        g.add_edge(0, 1, 2)
        numbering = number_call_graph(g, entries=[1])
        csize = numbering.context_domain_size()
        cbits = bits_for(csize)
        mgr = BDD(num_vars=2 * cbits + 8)
        c0 = Domain(mgr, "C0", csize, list(range(0, 2 * cbits, 2)))
        c1 = Domain(mgr, "C1", csize, list(range(1, 2 * cbits, 2)))
        i0 = Domain(mgr, "I0", 16, list(range(2 * cbits, 2 * cbits + 4)))
        m0 = Domain(mgr, "M0", 16, list(range(2 * cbits + 4, 2 * cbits + 8)))
        node = numbering.build_iec(mgr, c0, i0, c1, m0, global_site=7, global_method=1)
        tuples = decode_iec(mgr, c0, i0, c1, m0, node)
        for c in range(csize):
            assert (c, 7, c, 1) in tuples

    def test_alloc_site_identity_rows(self):
        g = CallGraph()
        g.add_edge(0, 1, 2)
        g.add_edge(1, 1, 2)
        numbering = number_call_graph(g, entries=[1])
        csize = numbering.context_domain_size()
        cbits = bits_for(csize)
        mgr = BDD(num_vars=2 * cbits + 8)
        c0 = Domain(mgr, "C0", csize, list(range(0, 2 * cbits, 2)))
        c1 = Domain(mgr, "C1", csize, list(range(1, 2 * cbits, 2)))
        i0 = Domain(mgr, "I0", 16, list(range(2 * cbits, 2 * cbits + 4)))
        m0 = Domain(mgr, "M0", 16, list(range(2 * cbits + 4, 2 * cbits + 8)))
        node = numbering.build_iec(
            mgr, c0, i0, c1, m0, alloc_sites={2: [9]}
        )
        tuples = decode_iec(mgr, c0, i0, c1, m0, node)
        assert (1, 9, 1, 2) in tuples and (2, 9, 2, 2) in tuples
        assert (1, 9, 2, 2) not in tuples
