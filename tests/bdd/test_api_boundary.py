"""Static enforcement of the kernel API boundary.

The pluggable-kernel design only holds if no consumer reaches around
:class:`repro.bdd.api.BddKernel` into a concrete backend: backend
modules may restructure their node tables, cache layouts, and handle
packing freely as long as the ``BddKernel`` surface is stable.  These
tests AST-parse every module under ``src/repro`` and fail on any import
that resolves into ``repro.bdd.backends`` (or the legacy
``repro.bdd.manager`` shim) from outside the backend package itself.
"""

import ast
import pathlib

import repro

SRC_ROOT = pathlib.Path(repro.__file__).resolve().parent.parent
BACKEND_PKG = "repro.bdd.backends"
LEGACY_SHIM = "repro.bdd.manager"


def _module_name(path: pathlib.Path) -> str:
    rel = path.resolve().relative_to(SRC_ROOT).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _imports(path: pathlib.Path):
    """Absolute module names imported by ``path`` (relative resolved)."""
    module = _module_name(path)
    package_parts = module.split(".")
    if not path.name == "__init__.py":
        package_parts = package_parts[:-1]
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base)
                target = f"{prefix}.{node.module}" if node.module else prefix
            else:
                target = node.module or ""
            yield target
            # ``from pkg import sub`` can bind submodules too; include
            # the joined names so package-level pulls are caught.
            for alias in node.names:
                yield f"{target}.{alias.name}"


def _source_files():
    files = sorted((SRC_ROOT / "repro").rglob("*.py"))
    assert len(files) > 30, "source tree not found; check PYTHONPATH=src"
    return files


def test_no_consumer_imports_backend_internals():
    offenders = []
    for path in _source_files():
        module = _module_name(path)
        if module.startswith(BACKEND_PKG):
            continue  # backends may import each other (packed extends reference)
        if module == "repro.bdd.manager":
            continue  # the shim itself documents where the code moved
        for target in _imports(path):
            if target == BACKEND_PKG or target.startswith(BACKEND_PKG + "."):
                offenders.append(f"{module} imports {target}")
    assert not offenders, (
        "backend internals leaked past the BddKernel API:\n  "
        + "\n  ".join(offenders)
    )


def test_no_consumer_imports_legacy_manager_shim():
    """New code goes through ``repro.bdd`` / ``create_kernel``; nothing in
    the tree should still depend on the pre-split module path."""
    offenders = []
    for path in _source_files():
        module = _module_name(path)
        if module in ("repro.bdd", "repro.bdd.manager"):
            continue  # the package keeps the shim importable for external callers
        for target in _imports(path):
            if target == LEGACY_SHIM or target.startswith(LEGACY_SHIM + "."):
                offenders.append(f"{module} imports {target}")
    assert not offenders, (
        "legacy manager-shim imports remain:\n  " + "\n  ".join(offenders)
    )


def test_backend_registry_is_lazy():
    """Importing ``repro.bdd`` must not import any backend module; the
    registry resolves by module path only when a kernel is created."""
    import subprocess
    import sys

    code = (
        "import sys, repro.bdd; "
        "mods = [m for m in sys.modules if m.startswith('repro.bdd.backends')]; "
        "sys.exit(1 if mods else 0)"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env={"PYTHONPATH": str(SRC_ROOT), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, "importing repro.bdd eagerly loaded a backend"
