"""Tests for order-spec parsing, level assignment, and order search."""

import pytest

from repro.bdd import BDD, BDDError, Domain
from repro.bdd.ordering import assign_levels, candidate_orders, parse_order, search_order


class TestParseOrder:
    def test_single_group(self):
        assert parse_order("V0") == [["V0"]]

    def test_sequential_groups(self):
        assert parse_order("A_B_C") == [["A"], ["B"], ["C"]]

    def test_interleaved(self):
        assert parse_order("C0xC1_V0xV1xV2") == [["C0", "C1"], ["V0", "V1", "V2"]]

    def test_empty_group_rejected(self):
        with pytest.raises(BDDError):
            parse_order("A__B")


class TestAssignLevels:
    def test_sequential_layout(self):
        levels = assign_levels("A_B", {"A": 2, "B": 3})
        assert levels["A"] == [0, 1]
        assert levels["B"] == [2, 3, 4]

    def test_interleaved_layout(self):
        levels = assign_levels("AxB", {"A": 3, "B": 3})
        assert levels["A"] == [0, 2, 4]
        assert levels["B"] == [1, 3, 5]

    def test_interleaved_unequal_widths(self):
        levels = assign_levels("AxB", {"A": 2, "B": 4})
        # A's bits pair with B's first bits; B's tail follows.
        assert levels["A"] == [0, 2]
        assert levels["B"] == [1, 3, 4, 5]

    def test_levels_increase_within_domain(self):
        levels = assign_levels("AxBxC_D", {"A": 5, "B": 2, "C": 7, "D": 3})
        for name in "ABCD":
            assert levels[name] == sorted(levels[name])

    def test_total_level_count(self):
        bits = {"A": 5, "B": 2, "C": 7}
        levels = assign_levels("AxB_C", bits)
        all_levels = [lv for ls in levels.values() for lv in ls]
        assert sorted(all_levels) == list(range(sum(bits.values())))

    def test_mismatched_domains_rejected(self):
        with pytest.raises(BDDError):
            assign_levels("A_B", {"A": 2})
        with pytest.raises(BDDError):
            assign_levels("A", {"A": 2, "B": 1})

    def test_levels_feed_domains(self):
        bits = {"V0": 4, "V1": 4}
        levels = assign_levels("V0xV1", bits)
        mgr = BDD(num_vars=8)
        v0 = Domain(mgr, "V0", 16, levels["V0"])
        v1 = Domain(mgr, "V1", 16, levels["V1"])
        # Rename across interleaved equal-width domains hits the fast path
        # and preserves values.
        node = v0.eq_const(9)
        renamed = mgr.replace(node, v0.replace_map_to(v1))
        got = {v1.decode(b) for b in mgr.iter_assignments(renamed, v1.levels)}
        assert got == {9}


class TestCandidatesAndSearch:
    def test_candidates_cover_interleave_pairs(self):
        cands = candidate_orders(["V0", "V1", "H0"], [("V0", "V1")])
        assert any("V0xV1" in c for c in cands)
        assert all("H0" in c for c in cands)

    def test_candidates_unique(self):
        cands = candidate_orders(["A", "B", "C"])
        assert len(cands) == len(set(cands))

    def test_search_picks_minimum(self):
        costs = {"A_B": 3.0, "B_A": 1.0}
        best, results = search_order(lambda s: costs[s], ["A_B", "B_A"])
        assert best == "B_A"
        assert results == costs

    def test_search_requires_candidates(self):
        with pytest.raises(BDDError):
            search_order(lambda s: 0.0, [])

    def test_search_interleaving_beats_concatenation(self):
        """The paper's Section 2.4.2 example: equal-value pair relations are
        tiny when attribute bits are interleaved, large when concatenated."""

        def cost(spec):
            from repro.bdd.ordering import assign_levels as assign

            bits = {"A": 10, "B": 10}
            levels = assign(spec, bits)
            mgr = BDD(num_vars=20)
            a = Domain(mgr, "A", 1024, levels["A"])
            b = Domain(mgr, "B", 1024, levels["B"])
            from repro.bdd.domain import equality_relation

            equality_relation(a, b)
            return float(mgr.node_count())

        best, results = search_order(cost, ["AxB", "A_B"])
        assert best == "AxB"
        assert results["AxB"] < results["A_B"]
