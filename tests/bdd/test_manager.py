"""Unit tests for the BDD kernel."""

import pytest

from repro.bdd import BDD, BDDError, FALSE, TRUE


@pytest.fixture
def mgr():
    return BDD(num_vars=8)


def eval_bdd(mgr, u, assignment):
    """Evaluate BDD ``u`` under a dict level -> bool."""
    while u > 1:
        v = mgr.var_of(u)
        u = mgr.high(u) if assignment.get(v, False) else mgr.low(u)
    return u == TRUE


def all_assignments(nvars):
    for mask in range(1 << nvars):
        yield {i: bool((mask >> i) & 1) for i in range(nvars)}


class TestNodeBasics:
    def test_terminals(self, mgr):
        assert FALSE == 0
        assert TRUE == 1
        assert mgr.is_terminal(FALSE)
        assert mgr.is_terminal(TRUE)
        assert not mgr.is_terminal(mgr.var_bdd(0))

    def test_mk_reduces_equal_children(self, mgr):
        assert mgr.mk(3, TRUE, TRUE) == TRUE
        assert mgr.mk(3, FALSE, FALSE) == FALSE

    def test_mk_hash_conses(self, mgr):
        a = mgr.mk(2, FALSE, TRUE)
        b = mgr.mk(2, FALSE, TRUE)
        assert a == b

    def test_mk_rejects_out_of_range_var(self, mgr):
        with pytest.raises(BDDError):
            mgr.mk(99, FALSE, TRUE)

    def test_var_bdd_semantics(self, mgr):
        x = mgr.var_bdd(3)
        assert eval_bdd(mgr, x, {3: True})
        assert not eval_bdd(mgr, x, {3: False})

    def test_nvar_bdd_semantics(self, mgr):
        x = mgr.nvar_bdd(3)
        assert not eval_bdd(mgr, x, {3: True})
        assert eval_bdd(mgr, x, {3: False})

    def test_cube(self, mgr):
        c = mgr.cube([(1, True), (4, False), (6, True)])
        assert eval_bdd(mgr, c, {1: True, 4: False, 6: True})
        assert not eval_bdd(mgr, c, {1: True, 4: True, 6: True})
        assert not eval_bdd(mgr, c, {1: False, 4: False, 6: True})

    def test_add_vars(self, mgr):
        n = mgr.num_vars
        assert mgr.add_vars(4) == n + 4
        mgr.var_bdd(n + 3)  # now in range

    def test_node_count_grows(self, mgr):
        before = mgr.node_count()
        mgr.var_bdd(0)
        assert mgr.node_count() == before + 1


class TestConnectives:
    def test_and_truth_table(self, mgr):
        x, y = mgr.var_bdd(0), mgr.var_bdd(1)
        f = mgr.and_(x, y)
        for a in all_assignments(2):
            assert eval_bdd(mgr, f, a) == (a[0] and a[1])

    def test_or_truth_table(self, mgr):
        x, y = mgr.var_bdd(0), mgr.var_bdd(1)
        f = mgr.or_(x, y)
        for a in all_assignments(2):
            assert eval_bdd(mgr, f, a) == (a[0] or a[1])

    def test_diff_truth_table(self, mgr):
        x, y = mgr.var_bdd(0), mgr.var_bdd(1)
        f = mgr.diff(x, y)
        for a in all_assignments(2):
            assert eval_bdd(mgr, f, a) == (a[0] and not a[1])

    def test_xor_truth_table(self, mgr):
        x, y = mgr.var_bdd(0), mgr.var_bdd(1)
        f = mgr.xor(x, y)
        for a in all_assignments(2):
            assert eval_bdd(mgr, f, a) == (a[0] != a[1])

    def test_not_involution(self, mgr):
        x = mgr.and_(mgr.var_bdd(0), mgr.or_(mgr.var_bdd(2), mgr.nvar_bdd(5)))
        assert mgr.not_(mgr.not_(x)) == x

    def test_de_morgan(self, mgr):
        x, y = mgr.var_bdd(1), mgr.var_bdd(3)
        assert mgr.not_(mgr.and_(x, y)) == mgr.or_(mgr.not_(x), mgr.not_(y))

    def test_ite_equals_expansion(self, mgr):
        f = mgr.var_bdd(0)
        g = mgr.and_(mgr.var_bdd(1), mgr.var_bdd(2))
        h = mgr.or_(mgr.var_bdd(3), mgr.nvar_bdd(1))
        ite = mgr.ite(f, g, h)
        manual = mgr.or_(mgr.and_(f, g), mgr.and_(mgr.not_(f), h))
        assert ite == manual

    def test_and_all_or_all(self, mgr):
        xs = [mgr.var_bdd(i) for i in range(4)]
        conj = mgr.and_all(xs)
        disj = mgr.or_all(xs)
        for a in all_assignments(4):
            assert eval_bdd(mgr, conj, a) == all(a[i] for i in range(4))
            assert eval_bdd(mgr, disj, a) == any(a[i] for i in range(4))

    def test_and_all_empty_is_true(self, mgr):
        assert mgr.and_all([]) == TRUE

    def test_or_all_empty_is_false(self, mgr):
        assert mgr.or_all([]) == FALSE

    def test_canonicity(self, mgr):
        # Two different constructions of the same function share a node.
        x, y, z = mgr.var_bdd(0), mgr.var_bdd(1), mgr.var_bdd(2)
        f1 = mgr.or_(mgr.and_(x, y), mgr.and_(x, z))
        f2 = mgr.and_(x, mgr.or_(y, z))
        assert f1 == f2


class TestQuantification:
    def test_exist_removes_variable(self, mgr):
        x, y = mgr.var_bdd(0), mgr.var_bdd(1)
        f = mgr.and_(x, y)
        vs = mgr.varset([0])
        g = mgr.exist(f, vs)
        assert g == y

    def test_exist_tautology(self, mgr):
        x = mgr.var_bdd(2)
        f = mgr.or_(x, mgr.not_(x))
        assert mgr.exist(f, mgr.varset([2])) == TRUE

    def test_exist_empty_varset(self, mgr):
        f = mgr.var_bdd(1)
        assert mgr.exist(f, mgr.varset([])) == f

    def test_exist_multiple(self, mgr):
        f = mgr.and_all([mgr.var_bdd(0), mgr.var_bdd(3), mgr.var_bdd(5)])
        g = mgr.exist(f, mgr.varset([0, 5]))
        assert g == mgr.var_bdd(3)

    def test_rel_prod_matches_and_then_exist(self, mgr):
        # rel_prod(a, b, V) == exist(and(a, b), V) on random-ish formulas.
        a = mgr.or_(mgr.and_(mgr.var_bdd(0), mgr.var_bdd(2)), mgr.var_bdd(4))
        b = mgr.or_(mgr.and_(mgr.var_bdd(2), mgr.var_bdd(3)), mgr.nvar_bdd(0))
        vs = mgr.varset([2, 0])
        assert mgr.rel_prod(a, b, vs) == mgr.exist(mgr.and_(a, b), vs)

    def test_rel_prod_terminal_cases(self, mgr):
        a = mgr.var_bdd(0)
        vs = mgr.varset([0])
        assert mgr.rel_prod(a, FALSE, vs) == FALSE
        assert mgr.rel_prod(FALSE, a, vs) == FALSE
        assert mgr.rel_prod(a, TRUE, vs) == TRUE  # exists x0. x0
        assert mgr.rel_prod(TRUE, TRUE, vs) == TRUE


class TestReplace:
    def test_replace_adjacent(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(2))
        mid = mgr.replace_map({0: 1})
        g = mgr.replace(f, mid)
        assert g == mgr.and_(mgr.var_bdd(1), mgr.var_bdd(2))

    def test_replace_order_inverting(self, mgr):
        # Swap-like rename that inverts relative order: 0 -> 5 while 3 stays.
        f = mgr.and_(mgr.var_bdd(0), mgr.nvar_bdd(3))
        mid = mgr.replace_map({0: 5})
        g = mgr.replace(f, mid)
        assert g == mgr.and_(mgr.var_bdd(5), mgr.nvar_bdd(3))

    def test_replace_block_shift(self, mgr):
        f = mgr.and_all([mgr.var_bdd(0), mgr.var_bdd(1), mgr.nvar_bdd(2)])
        mid = mgr.replace_map({0: 3, 1: 4, 2: 5})
        g = mgr.replace(f, mid)
        expected = mgr.and_all([mgr.var_bdd(3), mgr.var_bdd(4), mgr.nvar_bdd(5)])
        assert g == expected

    def test_replace_rejects_non_injective(self, mgr):
        with pytest.raises(BDDError):
            mgr.replace_map({0: 2, 1: 2})

    def test_replace_terminals(self, mgr):
        mid = mgr.replace_map({0: 1})
        assert mgr.replace(TRUE, mid) == TRUE
        assert mgr.replace(FALSE, mid) == FALSE

    def test_replace_roundtrip(self, mgr):
        f = mgr.or_(mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1)), mgr.nvar_bdd(1))
        there = mgr.replace_map({0: 4, 1: 5})
        back = mgr.replace_map({4: 0, 5: 1})
        assert mgr.replace(mgr.replace(f, there), back) == f


class TestCounting:
    def test_sat_count_simple(self, mgr):
        x = mgr.var_bdd(0)
        assert mgr.sat_count(x, [0]) == 1
        assert mgr.sat_count(x, [0, 1]) == 2
        assert mgr.sat_count(x, [0, 1, 2]) == 4

    def test_sat_count_terminals(self, mgr):
        assert mgr.sat_count(TRUE, [0, 1]) == 4
        assert mgr.sat_count(FALSE, [0, 1]) == 0

    def test_sat_count_conjunction(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(3))
        assert mgr.sat_count(f, [0, 1, 2, 3]) == 4

    def test_sat_count_requires_support(self, mgr):
        f = mgr.var_bdd(5)
        with pytest.raises(BDDError):
            mgr.sat_count(f, [0, 1])

    def test_iter_assignments(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.nvar_bdd(1))
        got = sorted(mgr.iter_assignments(f, [0, 1]))
        assert got == [(1, 0)]

    def test_iter_assignments_dont_care_expansion(self, mgr):
        f = mgr.var_bdd(0)
        got = sorted(mgr.iter_assignments(f, [0, 2]))
        assert got == [(1, 0), (1, 1)]

    def test_iter_matches_sat_count(self, mgr):
        f = mgr.or_(mgr.and_(mgr.var_bdd(0), mgr.var_bdd(2)), mgr.var_bdd(3))
        levels = [0, 1, 2, 3]
        assert len(list(mgr.iter_assignments(f, levels))) == mgr.sat_count(f, levels)

    def test_support(self, mgr):
        f = mgr.or_(mgr.and_(mgr.var_bdd(1), mgr.var_bdd(4)), mgr.nvar_bdd(6))
        assert mgr.support(f) == frozenset({1, 4, 6})
        assert mgr.support(TRUE) == frozenset()

    def test_restrict(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        assert mgr.restrict(f, {0: True}) == mgr.var_bdd(1)
        assert mgr.restrict(f, {0: False}) == FALSE


class TestGarbageCollection:
    def test_collect_preserves_roots(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        junk = mgr.or_(mgr.var_bdd(5), mgr.var_bdd(6))
        nodes_before = mgr.node_count()
        mapping = mgr.collect_garbage([f])
        assert mgr.node_count() < nodes_before
        new_f = mapping[f]
        # Semantics preserved.
        assert eval_bdd(mgr, new_f, {0: True, 1: True})
        assert not eval_bdd(mgr, new_f, {0: True, 1: False})
        assert junk not in mapping or mapping.get(junk) is None or True

    def test_collect_then_continue_operating(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        mapping = mgr.collect_garbage([f])
        f = mapping[f]
        g = mgr.or_(f, mgr.var_bdd(2))
        for a in all_assignments(3):
            assert eval_bdd(mgr, g, a) == ((a[0] and a[1]) or a[2])

    def test_collect_keeps_canonicity(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        mapping = mgr.collect_garbage([f])
        f = mapping[f]
        # Rebuilding the same function must give the same handle.
        assert mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1)) == f

    def test_gc_count_increments(self, mgr):
        mgr.collect_garbage([])
        mgr.collect_garbage([])
        assert mgr.gc_count == 2


class TestStats:
    def test_peak_nodes_monotone(self, mgr):
        p0 = mgr.peak_nodes
        mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        assert mgr.peak_nodes >= p0

    def test_clear_caches_keeps_semantics(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        mgr.clear_caches()
        assert mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1)) == f

    def test_to_dot_contains_nodes(self, mgr):
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        dot = mgr.to_dot(f)
        assert "digraph" in dot and "x0" in dot and "x1" in dot
