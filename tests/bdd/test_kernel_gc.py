"""GC invariants shared by every registered BDD backend.

``collect_garbage`` must (a) invalidate *every* operation cache —
including the persistent ``sat_count`` cache, whose keys reference old
handles — (b) return a remapping under which every live handle still
denotes the same boolean function, and (c) preserve the lifetime
statistics (``peak_nodes``, ``op_count``, cache high-water marks) that
budget enforcement and benchmark reports read after the fact.
"""

import pytest

from repro.bdd import FALSE, TRUE, available_backends, create_kernel

NVARS = 8
LEVELS = tuple(range(NVARS))

pytestmark = pytest.mark.parametrize("backend", available_backends())


def _op_caches(m):
    """Every dict-valued cache attribute of the backend instance.

    Covers the reference per-op caches, the packed unified cache, the
    shared ``_satcount_cache``, and the packed ``_hot`` closure cache —
    anything a future backend adds under the same naming convention is
    picked up automatically.
    """
    caches = {
        name: val
        for name, val in vars(m).items()
        if (name.endswith("_cache") or name == "_hot") and isinstance(val, dict)
    }
    assert caches, "backend exposes no caches; update this helper"
    return caches


def _build_roots(m):
    """A few nontrivial relations plus enough ops to fill the caches."""
    a = m.cube([(0, True), (2, False), (4, True)])
    b = m.cube([(1, True), (3, True)])
    c = m.or_(a, m.and_(b, m.var_bdd(5)))
    d = m.xor(c, m.not_(a))
    e = m.exist(d, m.varset([0, 1]))
    f = m.rel_prod(c, d, m.varset([2, 3]))
    g = m.replace(e, m.replace_map({4: 6, 5: 7}))
    h = m.ite(a, f, g)
    m.diff(h, c)
    m.restrict(d, {0: True, 3: False})
    m.sat_count(d, LEVELS)
    m.sat_count(h, LEVELS)
    return [a, b, c, d, e, f, g, h]


def _truth(m, u):
    return frozenset(m.iter_assignments(u, LEVELS))


def test_gc_clears_every_cache(backend):
    m = create_kernel(num_vars=NVARS, backend=backend)
    roots = _build_roots(m)
    assert m.cache_entries() > 0
    assert m._satcount_cache, "workload must populate the sat_count cache"

    m.collect_garbage(roots)

    assert m.cache_entries() == 0
    for name, cache in _op_caches(m).items():
        assert not cache, f"{backend}: {name} not cleared by collect_garbage"


def test_gc_remap_preserves_relations(backend):
    m = create_kernel(num_vars=NVARS, backend=backend)
    roots = _build_roots(m)
    truths = [_truth(m, u) for u in roots]
    counts = [m.sat_count(u, LEVELS) for u in roots]

    mapping = m.collect_garbage(roots)
    remapped = [mapping[u] for u in roots]

    assert mapping[FALSE] == FALSE and mapping[TRUE] == TRUE
    for old, new, truth, count in zip(roots, remapped, truths, counts):
        assert _truth(m, new) == truth
        assert m.sat_count(new, LEVELS) == count
    # The compacted arena holds exactly the live nodes, and dead nodes
    # (intermediates not in ``roots``) were actually dropped.
    assert m.node_count() <= max(remapped) + 1 + len(remapped)


def test_gc_preserves_lifetime_stats(backend):
    m = create_kernel(num_vars=NVARS, backend=backend)
    roots = _build_roots(m)
    peak_nodes = m.peak_nodes
    op_count = m.op_count
    peak_cache = max(m.peak_cache_entries, m.cache_entries())
    gc_count = m.gc_count
    assert peak_nodes >= m.node_count()

    m.collect_garbage(roots)

    assert m.peak_nodes == peak_nodes, "peak is a lifetime high-water mark"
    assert m.op_count == op_count
    assert m.peak_cache_entries >= peak_cache, (
        "clearing caches must fold the pre-GC entry count into the peak"
    )
    assert m.gc_count == gc_count + 1


def test_ops_after_gc_rebuild_canonically(backend):
    """The unique table is rebuilt correctly: re-deriving an existing
    function after GC hash-conses onto the surviving handle."""
    m = create_kernel(num_vars=NVARS, backend=backend)
    a = m.cube([(0, True), (2, False)])
    b = m.or_(a, m.var_bdd(5))
    mapping = m.collect_garbage([a, b])
    a2, b2 = mapping[a], mapping[b]
    assert m.or_(a2, m.var_bdd(5)) == b2
    assert m.and_(b2, m.not_(m.var_bdd(5))) == m.diff(b2, m.var_bdd(5))
