"""Unit tests for finite domains and the paper's range/offset primitives."""

import pytest

from repro.bdd import BDD, BDDError, Domain, FALSE, TRUE, bits_for
from repro.bdd.domain import equality_relation, offset_relation


def make_domain(mgr, name, size, start_level):
    bits = bits_for(size)
    return Domain(mgr, name, size, list(range(start_level, start_level + bits)))


@pytest.fixture
def mgr():
    return BDD(num_vars=32)


def values_of(mgr, dom, node):
    """Decode a one-attribute relation into a set of integers."""
    out = set()
    for bits in mgr.iter_assignments(node, dom.levels):
        out.add(dom.decode(bits))
    return out


def pairs_of(mgr, a, b, node):
    out = set()
    levels = list(a.levels) + list(b.levels)
    for bits in mgr.iter_assignments(node, levels):
        out.add((a.decode(bits[: a.bits]), b.decode(bits[a.bits :])))
    return out


class TestBitsFor:
    def test_small_sizes(self):
        assert bits_for(1) == 1
        assert bits_for(2) == 1
        assert bits_for(3) == 2
        assert bits_for(4) == 2
        assert bits_for(5) == 3
        assert bits_for(256) == 8
        assert bits_for(257) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(BDDError):
            bits_for(0)


class TestDomainBasics:
    def test_eq_const_decodes_back(self, mgr):
        d = make_domain(mgr, "D", 10, 0)
        for v in range(10):
            assert values_of(mgr, d, d.eq_const(v)) == {v}

    def test_eq_const_out_of_range(self, mgr):
        d = make_domain(mgr, "D", 10, 0)
        with pytest.raises(BDDError):
            d.eq_const(10)
        with pytest.raises(BDDError):
            d.eq_const(-1)

    def test_wrong_level_count_rejected(self, mgr):
        with pytest.raises(BDDError):
            Domain(mgr, "D", 10, [0, 1])  # needs 4 bits

    def test_levels_must_increase(self, mgr):
        with pytest.raises(BDDError):
            Domain(mgr, "D", 10, [3, 2, 1, 0])

    def test_varset_interned(self, mgr):
        d = make_domain(mgr, "D", 16, 0)
        assert d.varset() == d.varset()

    def test_full_bdd(self, mgr):
        d = make_domain(mgr, "D", 10, 0)
        assert values_of(mgr, d, d.full_bdd()) == set(range(10))


class TestRangePrimitive:
    """Section 4.1: contiguous ranges in O(bits) operations."""

    def test_leq_exhaustive(self, mgr):
        d = make_domain(mgr, "D", 16, 0)
        for bound in range(16):
            assert values_of(mgr, d, d.leq_const(bound)) == set(range(bound + 1))

    def test_geq_exhaustive(self, mgr):
        d = make_domain(mgr, "D", 16, 0)
        for bound in range(16):
            assert values_of(mgr, d, d.geq_const(bound)) == set(range(bound, 16))

    def test_range_exhaustive(self, mgr):
        d = make_domain(mgr, "D", 16, 0)
        for lo in range(16):
            for hi in range(16):
                expected = set(range(lo, hi + 1))
                assert values_of(mgr, d, d.range_bdd(lo, hi)) == expected

    def test_empty_range(self, mgr):
        d = make_domain(mgr, "D", 16, 0)
        assert d.range_bdd(5, 4) == FALSE

    def test_range_is_linear_in_bits(self, mgr):
        # A range over a 12-bit domain must not materialize thousands of
        # nodes: the construction is O(bits), the result O(bits) as well.
        big = BDD(num_vars=12)
        d = Domain(big, "D", 4096, list(range(12)))
        before = big.node_count()
        d.range_bdd(100, 3000)
        assert big.node_count() - before < 100

    def test_range_count_matches(self, mgr):
        d = make_domain(mgr, "D", 16, 4)
        node = d.range_bdd(3, 11)
        assert mgr.sat_count(node, d.levels) == 9


class TestEqualityRelation:
    def test_same_width(self, mgr):
        a = make_domain(mgr, "A", 8, 0)
        b = make_domain(mgr, "B", 8, 3)
        eq = equality_relation(a, b)
        expected = {(v, v) for v in range(8)}
        assert pairs_of(mgr, a, b, eq) == expected

    def test_mixed_width(self, mgr):
        a = make_domain(mgr, "A", 4, 0)
        b = make_domain(mgr, "B", 16, 8)
        eq = equality_relation(a, b)
        assert pairs_of(mgr, a, b, eq) == {(v, v) for v in range(4)}

    def test_different_managers_rejected(self, mgr):
        a = make_domain(mgr, "A", 4, 0)
        other = BDD(num_vars=8)
        b = make_domain(other, "B", 4, 0)
        with pytest.raises(BDDError):
            equality_relation(a, b)


class TestOffsetRelation:
    """Section 4.1: callee contexts = caller contexts + constant."""

    def test_zero_offset_is_restricted_identity(self, mgr):
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        rel = offset_relation(a, b, 0, 2, 5)
        assert pairs_of(mgr, a, b, rel) == {(x, x) for x in range(2, 6)}

    def test_positive_offset(self, mgr):
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        rel = offset_relation(a, b, 3, 1, 4)
        assert pairs_of(mgr, a, b, rel) == {(x, x + 3) for x in range(1, 5)}

    def test_offset_with_carry_chain(self, mgr):
        # 7 + 1 = 8 flips every low bit: exercises carry propagation.
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        rel = offset_relation(a, b, 1, 7, 7)
        assert pairs_of(mgr, a, b, rel) == {(7, 8)}

    def test_negative_offset(self, mgr):
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        rel = offset_relation(a, b, -2, 5, 9)
        assert pairs_of(mgr, a, b, rel) == {(x, x - 2) for x in range(5, 10)}

    def test_overflow_excluded(self, mgr):
        # x + delta beyond the destination width has no image.
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        rel = offset_relation(a, b, 10, 0, 15)
        assert pairs_of(mgr, a, b, rel) == {(x, x + 10) for x in range(0, 6)}

    def test_mixed_widths(self, mgr):
        a = make_domain(mgr, "A", 4, 0)
        b = make_domain(mgr, "B", 64, 8)
        rel = offset_relation(a, b, 9, 0, 3)
        assert pairs_of(mgr, a, b, rel) == {(x, x + 9) for x in range(4)}

    def test_empty_range(self, mgr):
        a = make_domain(mgr, "A", 16, 0)
        b = make_domain(mgr, "B", 16, 8)
        assert offset_relation(a, b, 1, 9, 3) == FALSE

    def test_linear_size(self):
        big = BDD(num_vars=40)
        a = Domain(big, "A", 1 << 20, list(range(0, 40, 2)))
        b = Domain(big, "B", 1 << 20, list(range(1, 40, 2)))
        before = big.node_count()
        offset_relation(a, b, 12345, 17, 900000)
        # Interleaved source/destination bits keep the adder automaton and
        # the range filters linear in the bit width.
        assert big.node_count() - before < 1200


class TestReplaceMapTo:
    def test_rename_between_interleaved_domains(self):
        mgr = BDD(num_vars=8)
        a = Domain(mgr, "A", 16, [0, 2, 4, 6])
        b = Domain(mgr, "B", 16, [1, 3, 5, 7])
        node = a.eq_const(11)
        renamed = mgr.replace(node, a.replace_map_to(b))
        got = {b.decode(bits) for bits in mgr.iter_assignments(renamed, b.levels)}
        assert got == {11}

    def test_rename_to_wider_domain(self):
        mgr = BDD(num_vars=16)
        a = Domain(mgr, "A", 8, [0, 1, 2])
        b = Domain(mgr, "B", 64, list(range(3, 9)))
        node = a.eq_const(5)
        renamed = mgr.replace(node, a.replace_map_to(b))
        got = {b.decode(bits) for bits in mgr.iter_assignments(renamed, b.levels)}
        # High bits of B are unconstrained by the rename: 5 plus multiples of 8.
        assert 5 in got

    def test_rename_to_narrower_rejected(self):
        mgr = BDD(num_vars=8)
        a = Domain(mgr, "A", 16, [0, 1, 2, 3])
        b = Domain(mgr, "B", 4, [4, 5])
        with pytest.raises(BDDError):
            a.replace_map_to(b)
