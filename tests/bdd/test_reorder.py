"""Tests for block sifting and order-preserving rebuilds."""

import pytest

from repro.bdd import BDD, BDDError, Domain
from repro.bdd.domain import equality_relation
from repro.bdd.reorder import (
    count_nodes_under_order,
    rebuild_with_levels,
    sift_order,
)


def eval_bdd(mgr, u, assignment):
    while u > 1:
        v = mgr.var_of(u)
        u = mgr.high(u) if assignment.get(v, False) else mgr.low(u)
    return u == 1


class TestRebuild:
    def test_identity_rebuild_preserves_semantics(self):
        src = BDD(num_vars=6)
        f = src.or_(src.and_(src.var_bdd(0), src.var_bdd(3)), src.nvar_bdd(5))
        dst = BDD(num_vars=6)
        (g,) = rebuild_with_levels(src, [f], {i: i for i in range(6)}, dst)
        for mask in range(64):
            a = {i: bool((mask >> i) & 1) for i in range(6)}
            assert eval_bdd(src, f, a) == eval_bdd(dst, g, a)

    def test_permuted_rebuild_semantics(self):
        src = BDD(num_vars=4)
        f = src.and_(src.var_bdd(0), src.or_(src.var_bdd(1), src.var_bdd(3)))
        perm = {0: 3, 1: 2, 2: 1, 3: 0}
        dst = BDD(num_vars=4)
        (g,) = rebuild_with_levels(src, [f], perm, dst)
        for mask in range(16):
            a = {i: bool((mask >> i) & 1) for i in range(4)}
            pre = {perm[i]: a[i] for i in range(4)}
            assert eval_bdd(src, f, a) == eval_bdd(dst, g, pre)

    def test_missing_level_rejected(self):
        src = BDD(num_vars=4)
        f = src.var_bdd(2)
        dst = BDD(num_vars=4)
        with pytest.raises(BDDError):
            rebuild_with_levels(src, [f], {0: 0}, dst)

    def test_multiple_roots_share(self):
        src = BDD(num_vars=4)
        f = src.and_(src.var_bdd(0), src.var_bdd(1))
        g = src.or_(f, src.var_bdd(2))
        dst = BDD(num_vars=4)
        nf, ng = rebuild_with_levels(src, [f, g], {i: i for i in range(4)}, dst)
        assert dst.and_(dst.var_bdd(0), dst.var_bdd(1)) == nf


class TestSifting:
    def make_interleave_instance(self):
        """Two 8-bit domains related by equality: interleaved order is
        linear, concatenated order is exponential — sifting must find the
        interleaving."""
        mgr = BDD(num_vars=16)
        a = Domain(mgr, "A", 256, list(range(8)))
        b = Domain(mgr, "B", 256, list(range(8, 16)))
        eq = equality_relation(a, b)
        # Treat each bit pair as its own block so sifting can interleave.
        blocks = {}
        for i in range(8):
            blocks[f"a{i}"] = [a.levels[i]]
            blocks[f"b{i}"] = [b.levels[i]]
        initial = [f"a{i}" for i in range(8)] + [f"b{i}" for i in range(8)]
        return mgr, eq, blocks, initial

    def test_count_nodes_under_order(self):
        mgr, eq, blocks, initial = self.make_interleave_instance()
        concat = count_nodes_under_order(mgr, [eq], initial, blocks)
        interleaved_order = []
        for i in range(8):
            interleaved_order += [f"a{i}", f"b{i}"]
        inter = count_nodes_under_order(mgr, [eq], interleaved_order, blocks)
        assert inter < concat / 4

    def test_sifting_improves_equality_relation(self):
        mgr, eq, blocks, initial = self.make_interleave_instance()
        start = count_nodes_under_order(mgr, [eq], initial, blocks)
        order, best = sift_order(mgr, [eq], blocks, initial, max_rounds=2)
        assert best < start
        # The sifted order should be near-linear (pairs adjacent).
        assert best <= 8 * 8

    def test_sift_order_validates_blocks(self):
        mgr, eq, blocks, initial = self.make_interleave_instance()
        with pytest.raises(BDDError):
            sift_order(mgr, [eq], blocks, initial[:-1])

    def test_sift_stable_on_already_good_order(self):
        mgr = BDD(num_vars=4)
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        blocks = {"x": [0], "y": [1], "z": [2], "w": [3]}
        order, count = sift_order(mgr, [f], blocks, ["x", "y", "z", "w"])
        assert count <= 4 + 2
