"""Tests for BDD save/load."""

import pytest

from repro.bdd import BDD, BDDError
from repro.bdd.serialize import load_bdd, save_bdd


def eval_bdd(mgr, u, mask):
    while u > 1:
        v = mgr.var_of(u)
        u = mgr.high(u) if (mask >> v) & 1 else mgr.low(u)
    return u == 1


class TestSerialize:
    def test_roundtrip_semantics(self, tmp_path):
        src = BDD(num_vars=6)
        f = src.or_(src.and_(src.var_bdd(0), src.var_bdd(3)), src.nvar_bdd(5))
        path = tmp_path / "f.bdd"
        save_bdd(src, [f], path)
        dst = BDD(num_vars=6)
        (g,) = load_bdd(dst, path)
        for mask in range(64):
            assert eval_bdd(src, f, mask) == eval_bdd(dst, g, mask)

    def test_terminals(self, tmp_path):
        src = BDD(num_vars=2)
        path = tmp_path / "t.bdd"
        save_bdd(src, [0, 1], path)
        dst = BDD(num_vars=2)
        assert load_bdd(dst, path) == [0, 1]

    def test_shared_subgraphs_written_once(self, tmp_path):
        src = BDD(num_vars=4)
        shared = src.and_(src.var_bdd(2), src.var_bdd(3))
        f = src.or_(src.var_bdd(0), shared)
        g = src.or_(src.var_bdd(1), shared)
        path = tmp_path / "fg.bdd"
        count = save_bdd(src, [f, g], path)
        # shared's nodes appear once, not twice.
        text = path.read_text()
        node_lines = [l for l in text.splitlines() if l.startswith("node")]
        assert len(node_lines) == count
        dst = BDD(num_vars=4)
        nf, ng = load_bdd(dst, path)
        for mask in range(16):
            assert eval_bdd(dst, nf, mask) == eval_bdd(src, f, mask)
            assert eval_bdd(dst, ng, mask) == eval_bdd(src, g, mask)

    def test_load_into_same_manager_is_identity(self, tmp_path):
        mgr = BDD(num_vars=4)
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        path = tmp_path / "f.bdd"
        save_bdd(mgr, [f], path)
        (g,) = load_bdd(mgr, path)
        assert g == f  # hash-consing makes reload a no-op

    def test_too_few_vars_rejected(self, tmp_path):
        src = BDD(num_vars=8)
        f = src.var_bdd(7)
        path = tmp_path / "f.bdd"
        save_bdd(src, [f], path)
        small = BDD(num_vars=4)
        with pytest.raises(BDDError):
            load_bdd(small, path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bdd"
        path.write_text("not a bdd\n")
        with pytest.raises(BDDError):
            load_bdd(BDD(num_vars=2), path)

    def test_relation_checkpoint(self, tmp_path):
        """Checkpoint a solved relation and reload it in a fresh solver."""
        from repro.datalog import Solver, parse_program

        text = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""
        first = Solver(parse_program(text))
        first.add_tuples("edge", [(0, 1), (1, 2), (2, 3)])
        first.solve()
        path_file = tmp_path / "path.bdd"
        save_bdd(first.manager, [first.relation("path").node], path_file)

        # Same program text => same level layout => direct reload works.
        second = Solver(parse_program(text))
        (node,) = load_bdd(second.manager, path_file)
        second.set_node("path", node)
        assert set(second.relation("path").tuples()) == set(
            first.relation("path").tuples()
        )
