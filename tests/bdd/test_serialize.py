"""Tests for BDD save/load."""

import pytest

from repro.bdd import BDD, BDDError
from repro.bdd.serialize import dump_bdd_lines, load_bdd, save_bdd


def eval_bdd(mgr, u, mask):
    while u > 1:
        v = mgr.var_of(u)
        u = mgr.high(u) if (mask >> v) & 1 else mgr.low(u)
    return u == 1


class TestSerialize:
    def test_roundtrip_semantics(self, tmp_path):
        src = BDD(num_vars=6)
        f = src.or_(src.and_(src.var_bdd(0), src.var_bdd(3)), src.nvar_bdd(5))
        path = tmp_path / "f.bdd"
        save_bdd(src, [f], path)
        dst = BDD(num_vars=6)
        (g,) = load_bdd(dst, path)
        for mask in range(64):
            assert eval_bdd(src, f, mask) == eval_bdd(dst, g, mask)

    def test_terminals(self, tmp_path):
        src = BDD(num_vars=2)
        path = tmp_path / "t.bdd"
        save_bdd(src, [0, 1], path)
        dst = BDD(num_vars=2)
        assert load_bdd(dst, path) == [0, 1]

    def test_shared_subgraphs_written_once(self, tmp_path):
        src = BDD(num_vars=4)
        shared = src.and_(src.var_bdd(2), src.var_bdd(3))
        f = src.or_(src.var_bdd(0), shared)
        g = src.or_(src.var_bdd(1), shared)
        path = tmp_path / "fg.bdd"
        count = save_bdd(src, [f, g], path)
        # shared's nodes appear once, not twice.
        text = path.read_text()
        node_lines = [l for l in text.splitlines() if l.startswith("node")]
        assert len(node_lines) == count
        dst = BDD(num_vars=4)
        nf, ng = load_bdd(dst, path)
        for mask in range(16):
            assert eval_bdd(dst, nf, mask) == eval_bdd(src, f, mask)
            assert eval_bdd(dst, ng, mask) == eval_bdd(src, g, mask)

    def test_load_into_same_manager_is_identity(self, tmp_path):
        mgr = BDD(num_vars=4)
        f = mgr.and_(mgr.var_bdd(0), mgr.var_bdd(1))
        path = tmp_path / "f.bdd"
        save_bdd(mgr, [f], path)
        (g,) = load_bdd(mgr, path)
        assert g == f  # hash-consing makes reload a no-op

    def test_too_few_vars_rejected(self, tmp_path):
        src = BDD(num_vars=8)
        f = src.var_bdd(7)
        path = tmp_path / "f.bdd"
        save_bdd(src, [f], path)
        small = BDD(num_vars=4)
        with pytest.raises(BDDError):
            load_bdd(small, path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bdd"
        path.write_text("not a bdd\n")
        with pytest.raises(BDDError):
            load_bdd(BDD(num_vars=2), path)

    def test_canonical_ids_make_saves_byte_identical(self, tmp_path):
        """Two managers holding the same function under different handle
        histories serialize to byte-identical files."""
        a = BDD(num_vars=6)
        fa = a.and_(a.var_bdd(1), a.or_(a.var_bdd(3), a.var_bdd(5)))
        b = BDD(num_vars=6)
        # Build extra garbage first so handle values differ.
        for v in range(6):
            b.xor(b.var_bdd(v), b.var_bdd((v + 1) % 6))
        fb = b.and_(b.var_bdd(1), b.or_(b.var_bdd(3), b.var_bdd(5)))
        pa, pb = tmp_path / "a.bdd", tmp_path / "b.bdd"
        save_bdd(a, [fa], pa)
        save_bdd(b, [fb], pb)
        assert pa.read_bytes() == pb.read_bytes()

    def test_dump_lines_children_precede_parents(self):
        mgr = BDD(num_vars=4)
        f = mgr.and_(mgr.var_bdd(0), mgr.or_(mgr.var_bdd(1), mgr.var_bdd(3)))
        lines, count = dump_bdd_lines(mgr, [f])
        seen = {0, 1}
        for line in lines:
            if line.startswith("node "):
                node_id, _, low, high = map(int, line.split()[1:])
                assert low in seen and high in seen
                seen.add(node_id)
        assert count == len(seen) - 2


class TestCorruptInput:
    def saved(self, tmp_path):
        mgr = BDD(num_vars=4)
        f = mgr.and_(mgr.var_bdd(0), mgr.or_(mgr.var_bdd(1), mgr.var_bdd(3)))
        path = tmp_path / "f.bdd"
        save_bdd(mgr, [f], path)
        return path

    def reload(self, path):
        return load_bdd(BDD(num_vars=4), path)

    def edit(self, path, old, new):
        path.write_text(path.read_text().replace(old, new, 1))

    def test_truncated_roots(self, tmp_path):
        path = self.saved(tmp_path)
        lines = [l for l in path.read_text().splitlines() if not l.startswith("root ")]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match="promises 1 roots, found 0"):
            self.reload(path)

    def test_missing_vars_header(self, tmp_path):
        path = self.saved(tmp_path)
        lines = [l for l in path.read_text().splitlines() if not l.startswith("vars")]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match="missing 'vars' header"):
            self.reload(path)

    def test_dangling_child_named_with_line(self, tmp_path):
        path = self.saved(tmp_path)
        lines = path.read_text().splitlines()
        idx = next(i for i, l in enumerate(lines) if l.startswith("node"))
        parts = lines[idx].split()
        parts[3] = "777"
        lines[idx] = " ".join(parts)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match=rf":{idx + 1}:.*unknown child \(777\)"):
            self.reload(path)

    def test_unknown_root_rejected(self, tmp_path):
        path = self.saved(tmp_path)
        self.edit(path, "root ", "root 555 # was: ")
        with pytest.raises(BDDError, match="unknown root 555"):
            self.reload(path)

    def test_non_integer_field(self, tmp_path):
        path = self.saved(tmp_path)
        self.edit(path, "vars 4", "vars four")
        with pytest.raises(BDDError, match="non-integer field"):
            self.reload(path)

    def test_level_out_of_declared_range(self, tmp_path):
        path = self.saved(tmp_path)
        lines = path.read_text().splitlines()
        idx = next(i for i, l in enumerate(lines) if l.startswith("node"))
        parts = lines[idx].split()
        parts[2] = "9"
        lines[idx] = " ".join(parts)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match="level 9 outside 0..3"):
            self.reload(path)

    def test_duplicate_node_id(self, tmp_path):
        path = self.saved(tmp_path)
        lines = path.read_text().splitlines()
        idx = next(i for i, l in enumerate(lines) if l.startswith("node"))
        lines.insert(idx + 1, lines[idx])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match="duplicate node id"):
            self.reload(path)

    def test_terminal_id_collision(self, tmp_path):
        path = self.saved(tmp_path)
        lines = path.read_text().splitlines()
        idx = next(i for i, l in enumerate(lines) if l.startswith("node"))
        parts = lines[idx].split()
        parts[1] = "1"
        lines[idx] = " ".join(parts)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError, match="collides with a terminal"):
            self.reload(path)

    def test_unknown_record_kind(self, tmp_path):
        path = self.saved(tmp_path)
        self.edit(path, "roots 1", "roots 1\nblob 1 2 3")
        with pytest.raises(BDDError, match="unknown record 'blob'"):
            self.reload(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bdd"
        path.write_text("")
        with pytest.raises(BDDError, match="bad or missing"):
            self.reload(path)

    def test_corruption_never_partially_loads_roots(self, tmp_path):
        """A file that fails validation returns no roots at all rather
        than a half-rebuilt list."""
        path = self.saved(tmp_path)
        lines = path.read_text().splitlines()
        lines.append("root 9999")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(BDDError):
            self.reload(path)

    def test_relation_checkpoint(self, tmp_path):
        """Checkpoint a solved relation and reload it in a fresh solver."""
        from repro.datalog import Solver, parse_program

        text = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""
        first = Solver(parse_program(text))
        first.add_tuples("edge", [(0, 1), (1, 2), (2, 3)])
        first.solve()
        path_file = tmp_path / "path.bdd"
        save_bdd(first.manager, [first.relation("path").node], path_file)

        # Same program text => same level layout => direct reload works.
        second = Solver(parse_program(text))
        (node,) = load_bdd(second.manager, path_file)
        second.set_node("path", node)
        assert set(second.relation("path").tuples()) == set(
            first.relation("path").tuples()
        )
