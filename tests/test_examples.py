"""Integration tests: every example script runs cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXPECTATIONS = {
    "quickstart.py": ["Helper.get was cloned into 2 contexts"],
    "path_numbering.py": ["M6: 6", "IEC as a BDD"],
    "memory_leak.py": ["whoPointsTo", "Cache.slot"],
    "security_audit.py": ["VULNERABLE", "clean"],
    "escape_analysis.py": ["Escaped objects", "NEEDED"],
    "type_refinement.py": ["context-sensitive, full"],
    "webapp_audit.py": ["JCE VULNERABILITY", "by rule"],
    "datalog_playground.py": ["dirty targets", "[fact]"],
}


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in EXPECTATIONS[script]:
        assert needle in result.stdout, (
            f"{script}: expected {needle!r} in output:\n{result.stdout[-2000:]}"
        )


def test_all_examples_covered():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS), (
        "update EXPECTATIONS when adding examples"
    )
