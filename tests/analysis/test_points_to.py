"""End-to-end tests for Algorithms 1, 2, 3 and 5 on small programs with
known exact answers."""

import pytest

from repro.ir import parse_program, extract_facts
from repro.callgraph import cha_call_graph
from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)


CONFLATION = """
class Box {
    field item : Object;
}
class Helper {
    static method put(b : Box, o : Object) {
        b.item = o;
    }
    static method get(b : Box) returns Object {
        r = b.item;
        return r;
    }
}
class Main {
    static method main() {
        b1 = new Box;
        b2 = new Box;
        o1 = new Object;
        o2 = new Object;
        Helper.put(b1, o1);
        Helper.put(b2, o2);
        x1 = Helper.get(b1);
        x2 = Helper.get(b2);
    }
}
"""


@pytest.fixture(scope="module")
def conflation_program():
    return parse_program(CONFLATION, include_library=False)


@pytest.fixture(scope="module")
def ci_result(conflation_program):
    return ContextInsensitiveAnalysis(program=conflation_program).run()

@pytest.fixture(scope="module")
def cs_result(conflation_program):
    return ContextSensitiveAnalysis(program=conflation_program).run()


class TestBasicPointsTo:
    def test_allocation_flows_to_variable(self, ci_result):
        assert ci_result.points_to("Main.main", "b1") == {"Main.main@0:new Box"}
        assert ci_result.points_to("Main.main", "b2") == {"Main.main@1:new Box"}

    def test_parameter_passing(self, ci_result):
        got = ci_result.points_to("Helper.put", "o")
        assert got == {"Main.main@2:new Object", "Main.main@3:new Object"}

    def test_heap_points_to(self, ci_result):
        facts = ci_result.facts
        item = facts.id_of("F", "Box.item")
        hp = ci_result.relation_tuples("hP")
        box1 = facts.id_of("H", "Main.main@0:new Box")
        o1 = facts.id_of("H", "Main.main@2:new Object")
        assert (box1, item, o1) in hp

    def test_ci_conflates_contexts(self, ci_result):
        both = {"Main.main@2:new Object", "Main.main@3:new Object"}
        assert ci_result.points_to("Main.main", "x1") == both
        assert ci_result.points_to("Main.main", "x2") == both

    def test_cs_distinguishes_contexts(self, cs_result):
        assert cs_result.points_to("Main.main", "x1") == {"Main.main@2:new Object"}
        assert cs_result.points_to("Main.main", "x2") == {"Main.main@3:new Object"}

    def test_cs_context_counts(self, cs_result):
        assert cs_result.num_contexts("Main.main") == 1
        # put and get are each called twice from distinct sites.
        assert cs_result.num_contexts("Helper.put") == 2
        assert cs_result.num_contexts("Helper.get") == 2

    def test_points_to_in_context(self, cs_result):
        per_ctx = [
            cs_result.points_to_in_context("Helper.get", "r", c) for c in (1, 2)
        ]
        assert {"Main.main@2:new Object"} in per_ctx
        assert {"Main.main@3:new Object"} in per_ctx

    def test_cs_projection_subset_of_ci(self, ci_result, cs_result):
        """Soundness + precision: the projected CS result never contains a
        points-to pair the CI result lacks."""
        ci_vp = ci_result.relation_tuples("vP")
        cs_vp = set(cs_result.vPC.project("variable", "heap").tuples())
        assert cs_vp <= ci_vp

    def test_may_alias(self, ci_result):
        assert ci_result.may_alias("Main.main", "x1", "Main.main", "x2")
        assert not ci_result.may_alias("Main.main", "b1", "Main.main", "b2")


TYPED = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Main {
    static method pick(a : Animal, b : Animal) returns Animal {
        if (*) { return a; } else { return b; }
    }
    static method main() {
        var d : Dog;
        var c : Cat;
        var dogOnly : Dog;
        d = new Dog;
        c = new Cat;
        any = Main.pick(d, c);
        dogOnly = (Dog) any;
    }
}
"""


class TestTypeFiltering:
    def test_filter_removes_impossible_targets(self):
        prog = parse_program(TYPED, include_library=False)
        with_filter = ContextInsensitiveAnalysis(program=prog).run()
        # dogOnly is declared Dog; the cast filters out the Cat object.
        got = with_filter.points_to("Main.main", "dogOnly")
        assert got == {"Main.main@0:new Dog"}

    def test_algorithm1_keeps_impossible_targets(self):
        prog = parse_program(TYPED, include_library=False)
        no_filter = ContextInsensitiveAnalysis(
            program=prog, type_filtering=False, discover_call_graph=False
        ).run()
        got = no_filter.points_to("Main.main", "dogOnly")
        assert got == {"Main.main@0:new Dog", "Main.main@1:new Cat"}

    def test_filter_strictly_more_precise(self):
        prog = parse_program(TYPED, include_library=False)
        facts = extract_facts(prog)
        a1 = ContextInsensitiveAnalysis(
            facts=facts, type_filtering=False, discover_call_graph=False
        ).run()
        a2 = ContextInsensitiveAnalysis(
            facts=facts, type_filtering=True, discover_call_graph=False
        ).run()
        assert a2.relation_tuples("vP") <= a1.relation_tuples("vP")


VIRTUAL = """
class Animal {
    method noise() returns Object {
        o = new Object;
        return o;
    }
}
class Dog extends Animal {
    method noise() returns Object {
        bark = new Object;
        return bark;
    }
}
class Cat extends Animal {
    method noise() returns Object {
        meow = new Object;
        return meow;
    }
}
class Main {
    static method main() {
        var a : Animal;
        a = new Dog;
        n = a.noise();
    }
}
"""


class TestCallGraphDiscovery:
    def test_cha_includes_all_subtypes(self):
        prog = parse_program(VIRTUAL, include_library=False)
        facts = extract_facts(prog)
        graph = cha_call_graph(facts)
        noise_site = [
            i for i, m in facts.site_method.items()
            if i >= len(facts.maps["H"]) and m == facts.method_id("Main.main")
        ][0]
        targets = {facts.maps["M"][t] for t in graph.call_targets(noise_site)}
        # CHA: declared type Animal -> all three implementations.
        assert targets == {"Animal.noise", "Dog.noise", "Cat.noise"}

    def test_discovery_narrows_to_actual_type(self):
        prog = parse_program(VIRTUAL, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        targets = result.call_targets("Main.main", 0)
        assert targets == {"Dog.noise"}

    def test_discovered_points_to_more_precise(self):
        prog = parse_program(VIRTUAL, include_library=False)
        facts = extract_facts(prog)
        onfly = ContextInsensitiveAnalysis(facts=facts).run()
        cha = ContextInsensitiveAnalysis(
            facts=facts, discover_call_graph=False
        ).run()
        assert onfly.relation_tuples("vP") <= cha.relation_tuples("vP")
        # Only the Dog bark flows through the virtual call.
        assert onfly.points_to("Main.main", "n") == {"Dog.noise@0:new Object"}

    def test_discovery_iterations_counted(self):
        prog = parse_program(VIRTUAL, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        assert result.iterations >= 2


RECURSIVE = """
class Node {
    field next : Node;
    field payload : Object;
}
class Builder {
    static method chain(n : Node, depth : Object) returns Node {
        m = new Node;
        n.next = m;
        if (*) { return m; }
        r = Builder.chain(m, depth);
        return r;
    }
}
class Main {
    static method main() {
        root = new Node;
        p = new Object;
        root.payload = p;
        last = Builder.chain(root, p);
    }
}
"""


class TestRecursion:
    def test_recursive_program_converges(self):
        prog = parse_program(RECURSIVE, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        got = result.points_to("Builder.chain", "m")
        assert got == {"Builder.chain@0:new Node"}

    def test_recursive_cs_single_context_for_scc(self):
        prog = parse_program(RECURSIVE, include_library=False)
        cs = ContextSensitiveAnalysis(program=prog).run()
        # Builder.chain is self-recursive: one SCC, one context per
        # entering path (only main calls it).
        assert cs.num_contexts("Builder.chain") == 1
        assert cs.points_to("Main.main", "last") == {"Builder.chain@0:new Node"}


class TestInfrastructure:
    def test_run_analysis_facade(self, conflation_program):
        import repro

        result = repro.analyze(conflation_program)
        assert result.points_to("Main.main", "b1") == {"Main.main@0:new Box"}
        cs = repro.analyze(conflation_program, context_sensitive=True)
        assert cs.points_to("Main.main", "x1") == {"Main.main@2:new Object"}

    def test_naive_mode_same_result(self, conflation_program):
        facts = extract_facts(conflation_program)
        fast = ContextInsensitiveAnalysis(facts=facts).run()
        slow = ContextInsensitiveAnalysis(facts=facts, naive=True).run()
        assert fast.relation_tuples("vP") == slow.relation_tuples("vP")

    def test_cs_with_cha_graph(self, conflation_program):
        cs = ContextSensitiveAnalysis(
            program=conflation_program, use_cha_graph=True
        ).run()
        assert cs.points_to("Main.main", "x1") == {"Main.main@2:new Object"}

    def test_context_cap_still_sound(self, conflation_program):
        capped = ContextSensitiveAnalysis(
            program=conflation_program, context_cap=1
        ).run()
        # With all contexts merged the result degrades toward CI but must
        # remain sound (x1 sees at least its own object).
        assert "Main.main@2:new Object" in capped.points_to("Main.main", "x1")

    def test_stats_exposed(self, cs_result):
        assert cs_result.peak_nodes > 0
        assert cs_result.peak_bytes == cs_result.peak_nodes * 16
        assert cs_result.seconds > 0
        assert cs_result.max_paths() >= 1

    def test_contexts_of_fact(self, cs_result):
        ctxs = cs_result.contexts_of_fact(
            "Helper.get", "r", "Main.main@2:new Object"
        )
        assert len(ctxs) == 1
