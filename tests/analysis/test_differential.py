"""Differential testing: the BDD/Datalog pipeline vs an independent
worklist implementation of the same analysis, on random programs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ContextInsensitiveAnalysis
from repro.bench.generator import WorkloadParams, generate_program
from repro.ir import extract_facts, parse_program

from reference import reference_points_to


def compare(facts, type_filtering=True):
    result = ContextInsensitiveAnalysis(
        facts=facts,
        type_filtering=type_filtering,
        discover_call_graph=True,
    ).run()
    got_vp = set(result.relation("vP").tuples())
    got_hp = set(result.relation("hP").tuples())
    got_ie = set(result.relation("IE").tuples())
    want_vp, want_hp, want_ie = reference_points_to(
        facts, type_filtering=type_filtering
    )
    assert got_vp == want_vp
    assert got_hp == want_hp
    assert got_ie == want_ie


class TestDifferentialFixed:
    def test_virtual_dispatch_program(self):
        facts = extract_facts(
            parse_program(
                """
class Animal {
    method noise() returns Object { o = new Object; return o; }
}
class Dog extends Animal {
    method noise() returns Object { o = new Object; return o; }
}
class Main {
    static method main() {
        var a : Animal;
        if (*) { a = new Dog; } else { a = new Animal; }
        n = a.noise();
    }
}
""",
                include_library=False,
            )
        )
        compare(facts)

    def test_container_program_with_library(self):
        facts = extract_facts(
            parse_program(
                """
class Main {
    static method main() {
        l = new ArrayList;
        o = new Object;
        l.add(o);
        x = l.get();
        s = new String;
        c = s.toCharArray();
    }
}
"""
            )
        )
        compare(facts)

    def test_exceptions_program(self):
        facts = extract_facts(
            parse_program(
                """
class Err { }
class Lib {
    static method may(o : Object) returns Object {
        if (*) { e = new Err; throw e; }
        return o;
    }
}
class Main {
    static method main() {
        o = new Object;
        r = Lib.may(o);
    }
}
""",
                include_library=False,
            )
        )
        compare(facts)

    def test_no_filter_variant(self):
        facts = extract_facts(
            parse_program(
                """
class A { }
class B { }
class Main {
    static method main() {
        var bonly : B;
        x = new A;
        y = new B;
        if (*) { o = x; } else { o = y; }
        bonly = (B) o;
    }
}
""",
                include_library=False,
            )
        )
        compare(facts, type_filtering=False)
        compare(facts, type_filtering=True)


params_strategy = st.builds(
    WorkloadParams,
    seed=st.integers(0, 100_000),
    layers=st.integers(2, 6),
    width=st.integers(1, 3),
    fanout=st.integers(1, 3),
    hierarchy_groups=st.integers(1, 2),
    subclasses=st.integers(1, 3),
    recursion_cliques=st.integers(0, 2),
    threads=st.integers(0, 2),
    shared_chain=st.integers(0, 3),
    use_library=st.booleans(),
)


@given(params_strategy)
@settings(max_examples=10, deadline=None)
def test_differential_on_random_programs(params):
    facts = extract_facts(generate_program(params))
    compare(facts)


@given(params_strategy)
@settings(max_examples=5, deadline=None)
def test_differential_without_filter(params):
    facts = extract_facts(generate_program(params))
    compare(facts, type_filtering=False)
