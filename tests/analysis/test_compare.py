"""Tests for the precision-comparison framework."""

import pytest

from repro.analysis import (
    AnalysisError,
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)
from repro.analysis.compare import compare_precision, precision_stats
from repro.ir import extract_facts, parse_program

SOURCE = """
class Box {
    field item : Object;
}
class Helper {
    static method put(b : Box, o : Object) {
        b.item = o;
    }
    static method get(b : Box) returns Object {
        r = b.item;
        return r;
    }
}
class Main {
    static method main() {
        b1 = new Box;
        b2 = new Box;
        o1 = new Object;
        o2 = new Object;
        Helper.put(b1, o1);
        Helper.put(b2, o2);
        x1 = Helper.get(b1);
        x2 = Helper.get(b2);
    }
}
"""


@pytest.fixture(scope="module")
def results():
    facts = extract_facts(parse_program(SOURCE, include_library=False))
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    cs = ContextSensitiveAnalysis(
        facts=facts, call_graph=ci.discovered_call_graph
    ).run()
    return ci, cs


class TestPrecisionStats:
    def test_basic_metrics(self, results):
        ci, _ = results
        stats = precision_stats(ci)
        assert stats.variables_with_targets > 0
        assert stats.total_pairs >= stats.variables_with_targets
        assert stats.average_set_size >= 1.0
        assert stats.max_set_size >= 2  # the conflated x1/x2
        assert 0.0 <= stats.singleton_ratio <= 1.0

    def test_cs_improves_metrics(self, results):
        ci, cs = results
        ci_stats = precision_stats(ci)
        cs_stats = precision_stats(cs)
        assert cs_stats.average_set_size < ci_stats.average_set_size
        assert cs_stats.singleton_ratio > ci_stats.singleton_ratio
        # The projected helper parameters legitimately keep two targets
        # (the union over their clones); the call-site results x1/x2
        # become singletons.
        assert cs_stats.max_set_size == 2

    def test_as_row(self, results):
        ci, _ = results
        row = precision_stats(ci).as_row()
        assert len(row) == 3


class TestCompare:
    def test_cs_vs_ci(self, results):
        ci, cs = results
        diff = compare_precision(ci, cs)
        # Soundness: the more precise analysis must never add pairs.
        assert diff.regressed == []
        # x1, x2 and the helper's parameters improve.
        assert any("x1" in name for name in diff.improved)
        assert any("x2" in name for name in diff.improved)
        assert diff.improvement_ratio > 0.0

    def test_self_comparison_is_neutral(self, results):
        ci, _ = results
        diff = compare_precision(ci, ci)
        assert diff.improved == [] and diff.regressed == []
        assert diff.improvement_ratio == 0.0

    def test_different_facts_rejected(self, results):
        ci, _ = results
        other = ContextInsensitiveAnalysis(
            program=parse_program(SOURCE, include_library=False)
        ).run()
        with pytest.raises(AnalysisError):
            compare_precision(ci, other)

    def test_regression_detection(self, results):
        """Comparing in the wrong direction reports 'regressions' —
        the alarm channel works."""
        ci, cs = results
        diff = compare_precision(cs, ci)  # baseline more precise: wrong way
        assert diff.regressed  # CI sees more than CS somewhere
