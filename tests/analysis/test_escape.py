"""Tests for the thread escape analysis (Algorithm 7) and its queries."""

import pytest

from repro.ir import parse_program
from repro.analysis import ThreadEscapeAnalysis


def run_escape(source):
    return ThreadEscapeAnalysis(
        program=parse_program(source, include_library=False)
    ).run()


SINGLE_THREADED = """
class Main {
    static method main() {
        a = new Object;
        b = new Object;
        sync a;
    }
}
"""


class TestSingleThreaded:
    def test_only_global_escapes(self):
        result = run_escape(SINGLE_THREADED)
        escaped = {result.facts.maps["H"][h] for h in result.escaped_heaps()}
        assert escaped == {"<global>"}

    def test_all_allocations_captured(self):
        result = run_escape(SINGLE_THREADED)
        captured = {result.facts.maps["H"][h] for h in result.captured_heaps()}
        assert "Main.main@0:new Object" in captured
        assert "Main.main@1:new Object" in captured

    def test_all_syncs_unneeded(self):
        result = run_escape(SINGLE_THREADED)
        summary = result.summary()
        assert summary["sync_needed"] == 0
        assert summary["sync_unneeded"] == 1


SHARED = """
class Worker extends Thread {
    method run() {
        private = new Object;
        shared = Main.channel;
        sync shared;
        sync private;
    }
}
class Main {
    static field channel : Object;
    static method main() {
        o = new Object;
        Main.channel = o;
        w = new Worker;
        w.start();
        sync o;
    }
}
"""


class TestCrossThreadSharing:
    def test_published_and_read_object_escapes(self):
        result = run_escape(SHARED)
        escaped = {result.facts.maps["H"][h] for h in result.escaped_heaps()}
        assert "Main.main@0:new Object" in escaped

    def test_private_object_captured(self):
        result = run_escape(SHARED)
        captured = {result.facts.maps["H"][h] for h in result.captured_heaps()}
        assert "Worker.run@0:new Object" in captured

    def test_thread_object_escapes(self):
        # The Worker object is created by main and accessed (as `this`) by
        # the worker contexts.
        result = run_escape(SHARED)
        escaped = {result.facts.maps["H"][h] for h in result.escaped_heaps()}
        assert "Main.main@2:new Worker" in escaped

    def test_sync_on_shared_needed(self):
        result = run_escape(SHARED)
        needed_names = {
            result.facts.maps["V"][v] for v in result.needed_sync_vars()
        }
        # Both main's o and run's shared alias the escaped object.
        assert any("Main.main" in n for n in needed_names)
        assert any("Worker.run" in n for n in needed_names)

    def test_sync_on_private_unneeded(self):
        result = run_escape(SHARED)
        unneeded = {
            result.facts.maps["V"][v] for v in result.unneeded_sync_vars()
        }
        assert any("private" in n for n in unneeded)

    def test_is_captured_helper(self):
        result = run_escape(SHARED)
        assert result.is_captured("Worker.run@0:new Object")
        assert not result.is_captured("Main.main@0:new Object")


TWO_INSTANCES = """
class Worker extends Thread {
    field sink : Object;
    method run() {
        mine = new Object;
        this.sink = mine;
    }
}
class Main {
    static method main() {
        w1 = new Worker;
        w2 = new Worker;
        w1.start();
        w2.start();
    }
}
"""


class TestThreadCloning:
    def test_two_contexts_per_creation_site(self):
        result = run_escape(TWO_INSTANCES)
        # Two creation sites, two contexts each, plus global and main.
        assert len(result.thread_contexts) == 2
        for pair in result.thread_contexts.values():
            assert len(pair) == 2

    def test_per_instance_object_captured(self):
        # `mine` is stored only into the creating instance's own field:
        # instances do not exchange it, so it stays captured even though
        # two clones of run() exist.
        result = run_escape(TWO_INSTANCES)
        captured = {result.facts.maps["H"][h] for h in result.captured_heaps()}
        assert "Worker.run@0:new Object" in captured

    def test_summary_shape(self):
        result = run_escape(TWO_INSTANCES)
        summary = result.summary()
        assert set(summary) == {"captured", "escaped", "sync_unneeded", "sync_needed"}
        assert summary["captured"] >= 1
        assert summary["escaped"] >= 1


LEAKY = """
class Worker extends Thread {
    method run() {
        leaked = new Object;
        Main.mailbox = leaked;
    }
}
class Main {
    static field mailbox : Object;
    static method main() {
        w = new Worker;
        w.start();
        got = Main.mailbox;
        sync got;
    }
}
"""


class TestReverseDirectionSharing:
    def test_worker_to_main_escape(self):
        result = run_escape(LEAKY)
        escaped = {result.facts.maps["H"][h] for h in result.escaped_heaps()}
        assert "Worker.run@0:new Object" in escaped

    def test_sync_needed_in_main(self):
        result = run_escape(LEAKY)
        assert result.summary()["sync_needed"] >= 1
