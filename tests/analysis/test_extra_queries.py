"""Tests for the cast-safety and devirtualization queries, and the 1-CFA
baseline numbering."""

import pytest

from repro.analysis import (
    AnalysisError,
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)
from repro.analysis.queries import cast_safety, devirtualization
from repro.callgraph import CallGraph, number_call_graph, number_call_graph_1cfa
from repro.ir import extract_facts, parse_program


CASTS = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Main {
    static method main() {
        var a : Animal;
        var b : Animal;
        a = new Dog;
        safeDog = (Dog) a;
        if (*) { b = new Dog; } else { b = new Cat; }
        maybeDog = (Dog) b;
    }
}
"""


class TestCastSafety:
    @pytest.fixture(scope="class")
    def report(self):
        prog = parse_program(CASTS, include_library=False)
        result = ContextInsensitiveAnalysis(
            program=prog, query_fragments=["query_casts"]
        ).run()
        return cast_safety(result)

    def test_provably_safe_cast(self, report):
        assert any("safeDog" in v for v in report.safe)

    def test_possibly_failing_cast(self, report):
        assert any("maybeDog" in v for v in report.failing)

    def test_evidence_names_offending_object(self, report):
        failing = next(v for v in report.failing if "maybeDog" in v)
        assert any("new Cat" in h for h in report.evidence[failing])

    def test_safe_ratio(self, report):
        assert 0.0 < report.safe_ratio < 1.0

    def test_requires_fragment(self):
        prog = parse_program(CASTS, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        with pytest.raises(AnalysisError):
            cast_safety(result)


VIRTUAL = """
class Animal {
    method noise() returns Object {
        o = new Object;
        return o;
    }
}
class Dog extends Animal {
    method noise() returns Object {
        o = new Object;
        return o;
    }
}
class Cat extends Animal {
    method noise() returns Object {
        o = new Object;
        return o;
    }
}
class Unused {
    method orphan() returns Object {
        o = new Object;
        return o;
    }
}
class Main {
    static method main() {
        var one : Animal;
        var many : Animal;
        one = new Dog;
        n1 = one.noise();
        if (*) { many = new Dog; } else { many = new Cat; }
        n2 = many.noise();
    }
}
"""


class TestDevirtualization:
    @pytest.fixture(scope="class")
    def report(self):
        prog = parse_program(VIRTUAL, include_library=False)
        result = ContextInsensitiveAnalysis(
            program=prog, query_fragments=["query_devirt"]
        ).run()
        return devirtualization(result)

    def test_single_target_site_is_mono(self, report):
        # one.noise() resolves only to Dog.noise.
        assert any("@1:call noise" in s for s in report.mono)

    def test_multi_target_site_is_poly(self, report):
        assert any(s for s in report.poly)

    def test_dead_method_detected(self, report):
        assert "Unused.orphan" in report.dead_methods

    def test_live_methods_not_dead(self, report):
        assert "Dog.noise" not in report.dead_methods
        assert "Main.main" not in report.dead_methods

    def test_devirt_ratio(self, report):
        assert 0.0 < report.devirt_ratio < 1.0


SHARED = """
class Box {
    field item : Object;
}
class Helper {
    static method put(b : Box, o : Object) {
        b.item = o;
    }
    static method get(b : Box) returns Object {
        r = b.item;
        return r;
    }
    static method putWrapperA(b : Box, o : Object) {
        Helper.put(b, o);
    }
    static method putWrapperB(b : Box, o : Object) {
        Helper.put(b, o);
    }
}
class Main {
    static method main() {
        b1 = new Box;
        b2 = new Box;
        o1 = new Object;
        o2 = new Object;
        Helper.putWrapperA(b1, o1);
        Helper.putWrapperB(b2, o2);
        x1 = Helper.get(b1);
        x2 = Helper.get(b2);
    }
}
"""


class Test1CFA:
    def test_1cfa_context_counts_are_indegrees(self):
        graph = CallGraph()
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 1, 2)
        graph.add_edge(2, 2, 3)
        numbering = number_call_graph_1cfa(graph, entries=[1])
        assert numbering.num_contexts(1) == 1
        assert numbering.num_contexts(2) == 2  # two incoming edges
        assert numbering.num_contexts(3) == 1

    def test_1cfa_collapses_caller_contexts(self):
        graph = CallGraph()
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 1, 2)
        graph.add_edge(2, 2, 3)
        numbering = number_call_graph_1cfa(graph, entries=[1])
        into3 = [r for r in numbering.ranges if r.callee == 3]
        assert len(into3) == 1
        assert into3[0].collapse_to == 1
        assert (into3[0].lo, into3[0].hi) == (1, 2)

    def test_1cfa_bounded_by_paths_numbering(self):
        graph = CallGraph()
        site = 0
        for layer in range(6):
            a, b, c, d = layer * 3 + 1, layer * 3 + 2, layer * 3 + 3, layer * 3 + 4
            for src, dst in [(a, b), (a, c), (b, d), (c, d)]:
                graph.add_edge(site, src, dst)
                site += 1
        full = number_call_graph(graph, entries=[1])
        cfa = number_call_graph_1cfa(graph, entries=[1])
        assert cfa.max_paths() <= full.max_paths()
        assert cfa.max_paths() == 2  # indegree, not path count

    def test_1cfa_analysis_runs_and_is_sound(self):
        prog = parse_program(SHARED, include_library=False)
        facts = extract_facts(prog)
        full = ContextSensitiveAnalysis(facts=facts).run()
        cfa = ContextSensitiveAnalysis(facts=facts, context_policy="1cfa").run()
        full_vp = set(full.vPC.project("variable", "heap").tuples())
        cfa_vp = set(cfa.vPC.project("variable", "heap").tuples())
        # 1-CFA is sound (superset of the fully cloned result) ...
        assert full_vp <= cfa_vp

    def test_1cfa_less_precise_than_full_cloning(self):
        """With wrappers between main and put, the last call site no
        longer distinguishes the two data flows: 1-CFA conflates what the
        full path numbering separates."""
        prog = parse_program(SHARED, include_library=False)
        facts = extract_facts(prog)
        full = ContextSensitiveAnalysis(facts=facts).run()
        assert full.points_to("Main.main", "x1") == {"Main.main@2:new Object"}
        cfa = ContextSensitiveAnalysis(facts=facts, context_policy="1cfa").run()
        assert len(cfa.points_to("Main.main", "x1")) == 1

    def test_bad_policy_rejected(self):
        prog = parse_program(SHARED, include_library=False)
        with pytest.raises(AnalysisError):
            ContextSensitiveAnalysis(program=prog, context_policy="2cfa")
