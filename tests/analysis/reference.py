"""An independent reference implementation of Andersen-style points-to
analysis with on-the-fly call graph discovery and type filtering.

This is a plain worklist algorithm over Python sets — no BDDs, no
Datalog — implementing the same semantics as Algorithm 3.  The
differential tests run both on random programs and require identical
results, giving end-to-end confidence in the BDD kernel, the rule
compiler, and the semi-naive solver at once.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.facts import Facts


def reference_points_to(
    facts: Facts, type_filtering: bool = True
) -> Tuple[Set[Tuple[int, int]], Set[Tuple[int, int, int]], Set[Tuple[int, int]]]:
    """Compute (vP, hP, IE) exactly as Algorithm 3 defines them."""
    rel = facts.relations
    var_type: Dict[int, int] = {v: t for v, t in rel["vT"]}
    heap_type: Dict[int, int] = {h: t for h, t in rel["hT"]}
    assignable: Set[Tuple[int, int]] = set(rel["aT"])

    def filter_ok(v: int, h: int) -> bool:
        if not type_filtering:
            return True
        tv = var_type.get(v)
        th = heap_type.get(h)
        if tv is None or th is None:
            return False
        return (tv, th) in assignable

    # Static program structure.
    loads: List[Tuple[int, int, int]] = rel["load"]
    stores: List[Tuple[int, int, int]] = rel["store"]
    dispatch: Dict[Tuple[int, int], Set[int]] = {}
    for t, n, m in rel["cha"]:
        dispatch.setdefault((t, n), set()).add(m)
    receivers: Dict[int, int] = {i: v for i, z, v in rel["actual"] if z == 0}
    site_names: Dict[int, int] = {i: n for _m, i, n in rel["mI"]}
    actuals: Dict[int, Dict[int, int]] = {}
    for i, z, v in rel["actual"]:
        actuals.setdefault(i, {})[z] = v
    formals: Dict[int, Dict[int, int]] = {}
    for m, z, v in rel["formal"]:
        formals.setdefault(m, {})[z] = v
    irets: Dict[int, List[int]] = {}
    for i, v in rel["Iret"]:
        irets.setdefault(i, []).append(v)
    mrets: Dict[int, List[int]] = {}
    for m, v in rel["Mret"]:
        mrets.setdefault(m, []).append(v)
    mthrs: Dict[int, int] = {m: v for m, v in rel["Mthr"]}
    site_method: Dict[int, int] = dict(facts.site_method)

    vP: Dict[int, Set[int]] = {}
    hP: Dict[Tuple[int, int], Set[int]] = {}
    assign_edges: Dict[int, Set[int]] = {}  # dest -> sources
    IE: Set[Tuple[int, int]] = set()

    for v1, v2 in rel["assign0"]:
        assign_edges.setdefault(v1, set()).add(v2)

    def add_vp(v: int, h: int) -> bool:
        if h in vP.setdefault(v, set()):
            return False
        vP[v].add(h)
        return True

    changed = True

    def add_ie(i: int, m: int) -> None:
        nonlocal changed
        if (i, m) in IE:
            return
        IE.add((i, m))
        changed = True
        # Parameter bindings.
        site_actuals = actuals.get(i, {})
        for z, formal_v in formals.get(m, {}).items():
            actual_v = site_actuals.get(z)
            if actual_v is not None:
                assign_edges.setdefault(formal_v, set()).add(actual_v)
        for dst in irets.get(i, ()):
            for src in mrets.get(m, ()):
                assign_edges.setdefault(dst, set()).add(src)
        caller = site_method.get(i)
        caller_thr = mthrs.get(caller) if caller is not None else None
        callee_thr = mthrs.get(m)
        if caller_thr is not None and callee_thr is not None:
            assign_edges.setdefault(caller_thr, set()).add(callee_thr)

    for i, m in rel["IE0"]:
        add_ie(i, m)

    for v, h in rel["vP0"]:
        add_vp(v, h)

    while changed:
        changed = False
        # Rule (2)/(7): assignments (with filter).
        for dest, sources in list(assign_edges.items()):
            for src in list(sources):
                for h in list(vP.get(src, ())):
                    if filter_ok(dest, h) and add_vp(dest, h):
                        changed = True
        # Rule (3)/(8): stores.
        for v1, f, v2 in stores:
            for h1 in list(vP.get(v1, ())):
                targets = hP.setdefault((h1, f), set())
                for h2 in list(vP.get(v2, ())):
                    if h2 not in targets:
                        targets.add(h2)
                        changed = True
        # Rule (4)/(9): loads (with filter).
        for v1, f, v2 in loads:
            for h1 in list(vP.get(v1, ())):
                for h2 in list(hP.get((h1, f), ())):
                    if filter_ok(v2, h2) and add_vp(v2, h2):
                        changed = True
        # Rules (10)/(11): call graph discovery.
        for i, name in site_names.items():
            recv = receivers.get(i)
            if recv is None:
                continue
            for h in list(vP.get(recv, ())):
                t = heap_type.get(h)
                if t is None:
                    continue
                for m in dispatch.get((t, name), ()):
                    add_ie(i, m)

    vp_set = {(v, h) for v, hs in vP.items() for h in hs}
    hp_set = {(h1, f, h2) for (h1, f), hs in hP.items() for h2 in hs}
    return vp_set, hp_set, IE
