"""Tests for the Section 5 queries: leak, security audit, type
refinement, mod-ref, and the context-sensitive type analysis."""

import pytest

from repro.ir import extract_facts, parse_program
from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ContextSensitiveTypeAnalysis,
)
from repro.analysis.queries import (
    memory_leak_query,
    mod_ref,
    refinement_stats,
    security_vulnerability_query,
)


VULNERABLE = """
class Main {
    static method main() {
        pw = new String;
        chars = pw.toCharArray();
        spec = new PBEKeySpec;
        spec.init(chars);
    }
}
"""

SAFE = """
class Main {
    static method main() {
        chars = new CharArray;
        spec = new PBEKeySpec;
        spec.init(chars);
    }
}
"""

INDIRECT = """
class Holder {
    field stash : Object;
}
class Main {
    static method main() {
        pw = new String;
        chars = pw.toCharArray();
        holder = new Holder;
        holder.stash = chars;
        later = holder.stash;
        spec = new PBEKeySpec;
        spec.init(later);
    }
}
"""


def run_cs(source, fragments=()):
    prog = parse_program(source)
    facts = extract_facts(prog)
    ci = ContextInsensitiveAnalysis(facts=facts).run()
    cs = ContextSensitiveAnalysis(
        facts=facts,
        call_graph=ci.discovered_call_graph,
        query_fragments=fragments,
    ).run()
    ie = list(ci.solver.relation("IE").tuples())
    return cs, ie


class TestSecurityAudit:
    def test_flags_string_derived_key(self):
        cs, ie = run_cs(VULNERABLE)
        report = security_vulnerability_query(cs, ie)
        assert report
        assert any("call init" in site for _, site in report.vulnerable_sites)

    def test_clean_program_not_flagged(self):
        cs, ie = run_cs(SAFE)
        report = security_vulnerability_query(cs, ie)
        assert not report

    def test_flags_flow_through_heap(self):
        """'This query will also identify cases where the object has passed
        through many variables and heap objects.'"""
        cs, ie = run_cs(INDIRECT)
        report = security_vulnerability_query(cs, ie)
        assert report

    def test_no_sink_in_program(self):
        cs, ie = run_cs(SAFE)
        report = security_vulnerability_query(
            cs, ie, sink_method="Nothing.here"
        )
        assert not report


LEAKY = """
class Cache {
    field slot : Object;
}
class Main {
    static method main() {
        cache = new Cache;
        big = new Object;
        cache.slot = big;
    }
}
"""


class TestMemoryLeak:
    def test_who_points_to(self):
        cs, _ = run_cs(LEAKY)
        heap = [n for n in cs.facts.maps["H"] if "new Object" in n][0]
        report = memory_leak_query(cs, heap)
        assert ("Main.main@0:new Cache", "Cache.slot") in report.holders

    def test_who_dunnit_contexts(self):
        cs, _ = run_cs(LEAKY)
        heap = [n for n in cs.facts.maps["H"] if "new Object" in n][0]
        report = memory_leak_query(cs, heap)
        assert report.writers
        ctx, v1, f, v2 = report.writers[0]
        assert f == "Cache.slot"
        assert "cache" in v1 or "main" in v1

    def test_unreferenced_object_has_no_holders(self):
        cs, _ = run_cs(LEAKY)
        heap = [n for n in cs.facts.maps["H"] if "new Cache" in n][0]
        report = memory_leak_query(cs, heap)
        assert report.holders == []


POLYMORPHIC = """
class Animal { }
class Dog extends Animal { }
class Cat extends Animal { }
class Pen {
    field occupant : Animal;
}
class Main {
    static method fill(p : Pen, a : Animal) {
        p.occupant = a;
    }
    static method main() {
        var a : Animal;
        dogPen = new Pen;
        catPen = new Pen;
        d = new Dog;
        c = new Cat;
        Main.fill(dogPen, d);
        Main.fill(catPen, c);
        a = dogPen.occupant;
        var overDeclared : Animal;
        overDeclared = new Dog;
    }
}
"""


class TestTypeRefinement:
    def test_refinement_finds_tightenable_declaration(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        ci = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_refinement_ci"]
        ).run()
        stats = refinement_stats(ci, "ci")
        assert stats.refinable > 0

    def test_precision_ordering_across_variants(self):
        """Figure 6's trend: context-sensitive (full) <= projected <= CI
        for multi-typed percentage; refinable grows with precision."""
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        ci = ContextInsensitiveAnalysis(
            facts=facts, query_fragments=["query_refinement_ci"]
        ).run()
        cs = ContextSensitiveAnalysis(
            facts=facts,
            call_graph=ci.discovered_call_graph,
            query_fragments=["query_refinement_cs_pointer"],
        ).run()
        ci_stats = refinement_stats(ci, "ci")
        proj_stats = refinement_stats(cs, "projected")
        full_stats = refinement_stats(cs, "full")
        assert full_stats.multi <= proj_stats.multi <= ci_stats.multi
        assert full_stats.refinable >= ci_stats.refinable

    def test_cs_separates_pen_occupants(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        cs = ContextSensitiveAnalysis(
            facts=facts, query_fragments=["query_refinement_cs_pointer"]
        ).run()
        full = refinement_stats(cs, "full")
        # In every single context, `a` in fill holds exactly one type.
        assert full.multi == 0.0


class TestTypeAnalysis:
    def test_types_flow_through_calls(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        ty = ContextSensitiveTypeAnalysis(program=prog).run()
        got = ty.types_of("Main.fill", "a")
        assert got == {"Dog", "Cat"}

    def test_field_types(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        ty = ContextSensitiveTypeAnalysis(program=prog).run()
        assert ty.field_types("Pen.occupant") == {"Dog", "Cat"}

    def test_type_analysis_less_precise_than_pointer_load(self):
        """The type analysis ignores the base object of loads (rule 23),
        so dogPen.occupant gets both types; the pointer analysis keeps
        them separate."""
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        ty = ContextSensitiveTypeAnalysis(facts=facts).run()
        assert ty.types_of("Main.main", "a") == {"Dog", "Cat"}
        cs = ContextSensitiveAnalysis(facts=facts).run()
        assert cs.points_to("Main.main", "a") == {"Main.main@2:new Dog"}

    def test_refinement_on_type_analysis(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        ty = ContextSensitiveTypeAnalysis(
            facts=facts, query_fragments=["query_refinement_cs_type"]
        ).run()
        stats_p = refinement_stats(ty, "projected")
        stats_f = refinement_stats(ty, "full")
        assert stats_f.multi <= stats_p.multi


class TestModRef:
    def test_mod_of_store_method(self):
        cs, _ = run_cs(LEAKY, fragments=["query_modref"])
        mod, ref = mod_ref(cs, "Main.main")
        assert ("Main.main@0:new Cache", "Cache.slot") in mod

    def test_transitive_mod(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        cs = ContextSensitiveAnalysis(
            facts=facts, query_fragments=["query_modref"]
        ).run()
        # main transitively calls fill, which stores into both pens.
        mod, _ = mod_ref(cs, "Main.main")
        assert ("Main.main@0:new Pen", "Pen.occupant") in mod
        assert ("Main.main@1:new Pen", "Pen.occupant") in mod

    def test_context_restricted_mod(self):
        prog = parse_program(POLYMORPHIC, include_library=False)
        facts = extract_facts(prog)
        cs = ContextSensitiveAnalysis(
            facts=facts, query_fragments=["query_modref"]
        ).run()
        # fill's two contexts modify different pens.
        mods = [mod_ref(cs, "Main.fill", context=c)[0] for c in (1, 2)]
        pens = [
            {h for h, _ in m if "new Pen" in h} for m in mods
        ]
        assert pens[0] != pens[1]
        assert all(len(p) == 1 for p in pens)

    def test_mod_requires_fragment(self):
        cs, _ = run_cs(LEAKY)
        from repro.analysis import AnalysisError

        with pytest.raises(AnalysisError):
            mod_ref(cs, "Main.main")
