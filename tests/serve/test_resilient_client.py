"""Resilient client: reconnect, backoff, circuit breaker, retry-after.

The clock is injected everywhere (recording ``sleep``, fake
``monotonic``, seeded ``rng``), so the whole failure ladder runs in
milliseconds of real time.
"""

import random
import socket
import threading
import time

import pytest

from repro.serve import (
    CircuitBreaker,
    ConnectionLostError,
    PointsToClient,
    PointsToServer,
    ResilientClient,
    ServerError,
)
from repro.serve.engine import QueryError


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class FakeClock:
    def __init__(self):
        self.now = 1000.0
        self.sleeps = []

    def monotonic(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestConnectionLostError:
    def test_is_both_query_and_connection_error(self):
        err = ConnectionLostError("gone")
        assert isinstance(err, QueryError)
        assert isinstance(err, ConnectionError)
        assert err.code == "connection-lost"

    def test_refused_connect_raises_typed(self):
        with pytest.raises(ConnectionLostError):
            PointsToClient("127.0.0.1", _free_port(), timeout=1.0)

    def test_server_eof_raises_typed(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, max_requests_per_connection=1)
        srv.start()
        try:
            client = PointsToClient(*srv.address)
            assert client.ping()  # request 1: answered, then recycled
            with pytest.raises(ConnectionLostError):
                client.ping()  # request 2: EOF from the recycler
            client.close()
        finally:
            srv.shutdown(drain_timeout=2.0)


class TestCircuitBreaker:
    def test_closed_to_open_to_half_open_to_closed(self):
        clock = FakeClock()
        breaker = CircuitBreaker(3, 5.0, monotonic=clock.monotonic)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(QueryError) as exc:
            breaker.allow()
        assert exc.value.code == "circuit-open"
        assert exc.value.details["retry_after_ms"] > 0
        clock.now += 5.1
        breaker.allow()  # half-open probe admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.failures == 0

    def test_half_open_failure_reopens_immediately(self):
        clock = FakeClock()
        breaker = CircuitBreaker(2, 5.0, monotonic=clock.monotonic)
        breaker.record_failure()
        breaker.record_failure()
        clock.now += 5.1
        breaker.allow()
        breaker.record_failure()  # the probe failed: snap back open
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(QueryError):
            breaker.allow()


class TestResilientClient:
    def test_reconnects_across_connection_recycling(self, loaded_db):
        # max_requests=1 makes the server hang up after every answer —
        # the harshest reconnect workout there is.
        srv = PointsToServer(loaded_db, port=0, max_requests_per_connection=1)
        srv.start()
        try:
            clock = FakeClock()
            with ResilientClient(
                *srv.address, sleep=clock.sleep, rng=random.Random(7)
            ) as client:
                for _ in range(5):
                    result = client.query(
                        "points-to", {"variable": "Main.main:a"}
                    )
                    assert result["count"] == 1
                assert client.reconnects >= 5
        finally:
            srv.shutdown(drain_timeout=2.0)

    def test_backoff_ladder_and_exhaustion(self):
        clock = FakeClock()
        client = ResilientClient(
            "127.0.0.1",
            _free_port(),
            timeout=0.5,
            max_retries=3,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=10.0,
            jitter=0.0,
            failure_threshold=10,  # keep the breaker out of this test
            sleep=clock.sleep,
            rng=random.Random(7),
        )
        with pytest.raises(ConnectionLostError):
            client.ping()
        # Three retries -> three backoffs: 0.1, 0.2, 0.4 (no jitter).
        assert clock.sleeps == pytest.approx([0.1, 0.2, 0.4])
        assert client.retries == 3

    def test_breaker_opens_and_fails_fast(self):
        clock = FakeClock()
        client = ResilientClient(
            "127.0.0.1",
            _free_port(),
            timeout=0.5,
            max_retries=1,
            failure_threshold=2,
            reset_after=60.0,
            sleep=clock.sleep,
            rng=random.Random(7),
        )
        with pytest.raises(ConnectionLostError):
            client.ping()  # 2 attempts -> threshold reached, breaker opens
        assert client.breaker.state == CircuitBreaker.OPEN
        with pytest.raises(QueryError) as exc:
            client.ping()  # no socket work at all: fail fast
        assert exc.value.code == "circuit-open"

    def test_half_open_probe_recovers_when_server_returns(self, loaded_db):
        clock = FakeClock()
        port = _free_port()
        client = ResilientClient(
            "127.0.0.1",
            port,
            timeout=1.0,
            max_retries=0,
            failure_threshold=1,
            reset_after=30.0,
            sleep=clock.sleep,
            monotonic=clock.monotonic,
            rng=random.Random(7),
        )
        with pytest.raises(ConnectionLostError):
            client.ping()
        assert client.breaker.state == CircuitBreaker.OPEN
        srv = PointsToServer(loaded_db, host="127.0.0.1", port=port)
        srv.start()
        try:
            clock.now += 31.0  # reset window passes; next call is the probe
            assert client.ping()
            assert client.breaker.state == CircuitBreaker.CLOSED
            client.close()
        finally:
            srv.shutdown(drain_timeout=2.0)

    def test_honors_retry_after_on_overload(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, max_pending=1, retry_after_ms=70)
        srv.start()
        release = threading.Event()

        def hog(args, budget):
            release.wait(10.0)
            return {"hog": True}

        srv.engine._evaluators["points-to"] = hog
        occupier = threading.Thread(
            target=lambda: PointsToClient(*srv.address).query(
                "points-to", {"variable": "Main.main:a"}, no_cache=True
            ),
            daemon=True,
        )
        occupier.start()
        try:
            deadline = time.monotonic() + 5.0
            while srv.admission.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            sleeps = []

            def sleeping(seconds):
                sleeps.append(seconds)
                if srv.admission.pending:  # free the slot mid-backoff
                    release.set()
                time.sleep(seconds)

            with ResilientClient(
                *srv.address, max_retries=8, sleep=sleeping, rng=random.Random(7)
            ) as client:
                result = client.query("escape", {"heap": "Main.main@0:new Object"})
                assert "verdict" in result
                assert client.overload_waits >= 1
            # The overload wait used the server's hint (>= 70ms base).
            assert any(s >= 0.07 for s in sleeps)
        finally:
            release.set()
            srv.shutdown(drain_timeout=2.0)

    def test_non_retryable_errors_propagate_immediately(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0)
        srv.start()
        try:
            clock = FakeClock()
            with ResilientClient(
                *srv.address, sleep=clock.sleep, rng=random.Random(7)
            ) as client:
                with pytest.raises(ServerError) as exc:
                    client.query("points-to", {"variable": "no.such:var"})
                assert exc.value.code == "not-found"
                assert clock.sleeps == []  # no retry, no backoff
        finally:
            srv.shutdown(drain_timeout=2.0)


class TestCliExitCodes:
    def test_server_unreachable_exits_69(self, capsys):
        from repro.cli import EXIT_UNAVAILABLE, main

        code = main(
            [
                "query",
                "--kind",
                "points-to",
                "--var",
                "Main.main:a",
                "--server",
                f"127.0.0.1:{_free_port()}",
            ]
        )
        assert code == EXIT_UNAVAILABLE
        err = capsys.readouterr().err.lower()
        # Either the transport error or the breaker (opened mid-ladder)
        # surfaces — both are availability failures mapped to 69.
        assert "connection" in err or "circuit" in err

    def test_server_query_roundtrip(self, loaded_db, capsys):
        from repro.cli import EXIT_OK, main

        srv = PointsToServer(loaded_db, port=0)
        srv.start()
        try:
            code = main(
                [
                    "query",
                    "--kind",
                    "points-to",
                    "--var",
                    "Main.main:a",
                    "--server",
                    f"{srv.host}:{srv.port}",
                ]
            )
            assert code == EXIT_OK
            assert "Main.main@0:new Object" in capsys.readouterr().out
        finally:
            srv.shutdown(drain_timeout=2.0)

    def test_bad_server_spec_exits_usage(self, capsys):
        from repro.cli import EXIT_USAGE, main

        code = main(
            [
                "query",
                "--kind",
                "points-to",
                "--var",
                "x",
                "--server",
                "nonsense",
            ]
        )
        assert code == EXIT_USAGE
