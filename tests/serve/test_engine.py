"""Demand-query engine: answers, argument handling, caching, budgets,
and in-flight deduplication under concurrency."""

import threading
import time

import pytest

from repro.serve import QueryEngine, QueryError


@pytest.fixture()
def engine(loaded_db):
    return QueryEngine(loaded_db)


class TestAnswers:
    def test_points_to_finds_allocation(self, engine):
        result = engine.query("points-to", {"variable": "Main.main:a"})
        assert result["count"] >= 1
        assert any("new Object" in heap for heap in result["heaps"])

    def test_copy_factoring_merges_variables(self, engine):
        a = engine.query("points-to", {"variable": "Main.main:a"})
        b = engine.query("points-to", {"variable": "Main.main:b"})
        assert a["heaps"] == b["heaps"]

    def test_ordinal_lookup_matches_name_lookup(self, engine, loaded_db):
        spec = "Main.main:a"
        by_name = engine.query("points-to", {"variable": spec})
        by_ordinal = engine.query(
            "points-to", {"variable": loaded_db.var_id(spec)}
        )
        assert by_name == by_ordinal

    def test_aliases_positive_and_negative(self, engine):
        same = engine.query(
            "aliases", {"variable1": "Main.main:a", "variable2": "Main.main:b"}
        )
        assert same["may_alias"] is True
        assert same["common_heaps"]
        distinct = engine.query(
            "aliases", {"variable1": "Main.main:a", "variable2": "Main.main:c"}
        )
        assert distinct["may_alias"] is False
        assert distinct["common_heaps"] == []

    def test_callers(self, engine):
        result = engine.query("callers", {"method": "Helper.keep"})
        assert result["count"] >= 1
        assert result["caller_methods"] == ["Main.main"]

    def test_mod_ref(self, engine):
        result = engine.query("mod-ref", {"method": "Helper.keep"})
        assert any(field == "Helper.f" for _, field in result["mod"])
        # mod is transitive: the caller inherits the callee's effect.
        main = engine.query("mod-ref", {"method": "Main.main"})
        assert any(field == "Helper.f" for _, field in main["mod"])

    def test_escape_verdicts(self, engine, loaded_db):
        escaped = loaded_db.escape["escaped"]
        captured = loaded_db.escape["captured"]
        assert escaped and captured
        h = loaded_db.maps["H"][escaped[0]]
        assert engine.query("escape", {"heap": h})["verdict"] == "escaped"
        h = loaded_db.maps["H"][captured[0]]
        assert engine.query("escape", {"heap": h})["verdict"] == "captured"


class TestArguments:
    def test_unknown_kind(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query("dominators", {})
        assert exc.value.code == "unknown-query"

    def test_missing_argument(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {})
        assert exc.value.code == "bad-argument"

    def test_unexpected_argument(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query(
                "points-to", {"variable": "Main.main:a", "frobnicate": 1}
            )
        assert exc.value.code == "bad-argument"

    def test_unknown_variable(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {"variable": "Nope.nope:x"})
        assert exc.value.code == "not-found"

    def test_ordinal_out_of_range(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {"variable": 10_000_000})
        assert exc.value.code == "not-found"

    def test_bad_context_type(self, engine):
        with pytest.raises(QueryError) as exc:
            engine.query(
                "points-to", {"variable": "Main.main:a", "context": "zero"}
            )
        assert exc.value.code == "bad-argument"


class TestCache:
    def test_hit_after_miss(self, loaded_db):
        engine = QueryEngine(loaded_db)
        args = {"variable": "Main.main:a"}
        first = engine.query("points-to", args)
        second = engine.query("points-to", args)
        assert first == second
        snap = engine.metrics.snapshot()["queries"]["points-to"]
        assert snap["computes"] == 1
        assert snap["cache_hits"] == 1
        assert engine.stats()["cache_entries"] == 1

    def test_use_cache_false_recomputes(self, loaded_db):
        engine = QueryEngine(loaded_db)
        args = {"variable": "Main.main:a"}
        engine.query("points-to", args, use_cache=False)
        engine.query("points-to", args, use_cache=False)
        snap = engine.metrics.snapshot()["queries"]["points-to"]
        assert snap["computes"] == 2

    def test_lru_eviction(self, loaded_db):
        engine = QueryEngine(loaded_db, cache_size=2)
        specs = sorted(loaded_db.var_reps)[:3]
        for spec in specs:
            engine.query("points-to", {"variable": spec})
        assert engine.stats()["cache_entries"] == 2

    def test_clear_cache(self, loaded_db):
        engine = QueryEngine(loaded_db)
        engine.query("points-to", {"variable": "Main.main:a"})
        engine.clear_cache()
        assert engine.stats()["cache_entries"] == 0


class TestBudget:
    def test_exhausted_budget_is_typed(self, loaded_db):
        engine = QueryEngine(loaded_db)
        with pytest.raises(QueryError) as exc:
            engine.query(
                "points-to", {"variable": "Main.main:a"},
                timeout=0.0, use_cache=False,
            )
        assert exc.value.code == "budget-exceeded"

    def test_engine_survives_budget_error(self, loaded_db):
        engine = QueryEngine(loaded_db)
        with pytest.raises(QueryError):
            engine.query(
                "points-to", {"variable": "Main.main:a"},
                timeout=0.0, use_cache=False,
            )
        # The watchdog must be cleared: a normal query still works.
        result = engine.query("points-to", {"variable": "Main.main:a"})
        assert result["count"] >= 1


class TestInFlightDedup:
    def test_concurrent_identical_queries_compute_once(self, loaded_db):
        engine = QueryEngine(loaded_db)
        original = engine._evaluators["points-to"]

        def slow(args, budget):
            time.sleep(0.3)
            return original(args, budget)

        engine._evaluators["points-to"] = slow
        results, errors = [], []

        def worker():
            try:
                results.append(
                    engine.query("points-to", {"variable": "Main.main:a"})
                )
            except Exception as err:  # noqa: BLE001 - collected for assert
                errors.append(err)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert len(results) == 8
        assert all(r == results[0] for r in results)
        snap = engine.metrics.snapshot()["queries"]["points-to"]
        assert snap["computes"] == 1
        assert snap["cache_hits"] == 7

    def test_error_propagates_to_waiters(self, loaded_db):
        engine = QueryEngine(loaded_db)
        original = engine._evaluators["points-to"]

        def slow_fail(args, budget):
            time.sleep(0.3)
            raise QueryError("not-found", "synthetic failure")

        engine._evaluators["points-to"] = slow_fail
        codes = []

        def worker():
            try:
                engine.query(
                    "points-to", {"variable": "Main.main:a"},
                    use_cache=False,
                )
            except QueryError as err:
                codes.append(err.code)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        engine._evaluators["points-to"] = original
        assert codes == ["not-found"] * 4
