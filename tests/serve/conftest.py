"""Shared fixtures: one small program compiled into a points-to database.

The compile is session-scoped — every serve test reads from the same
immutable database, which is exactly the serving model (solve once,
query many).
"""

import pytest

from repro.ir import parse_program
from repro.serve import PointsToDatabase, compile_database

# Exercises every query kind: allocations (points-to), a copy chain
# (aliases / factoring), a field store through a call (mod-ref, callers),
# and a cross-thread publication plus a thread-private allocation
# (escaped and captured verdicts).
SOURCE = """
class Worker extends Thread {
    method run() {
        private = new Object;
        shared = Main.channel;
        sync shared;
    }
}
class Helper {
    field f : Object;
    method keep(x : Object) {
        this.f = x;
    }
}
class Main {
    static field channel : Object;
    static method main() {
        a = new Object;
        b = a;
        c = new Helper;
        h = new Helper;
        h.keep(a);
        Main.channel = a;
        w = new Worker;
        w.start();
        sync a;
    }
}
"""


@pytest.fixture(scope="session")
def program():
    return parse_program(SOURCE, include_library=False)


@pytest.fixture(scope="session")
def compiled_db(program):
    return compile_database(program, source_path="serve-test.mj")


@pytest.fixture(scope="session")
def db_path(compiled_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("ptdb") / "serve-test.ptdb"
    compiled_db.save(path)
    return str(path)


@pytest.fixture(scope="session")
def loaded_db(db_path):
    return PointsToDatabase.load(db_path)


# A semantically different build of "the same service": ``Main.main:a``
# points to TWO heaps here (one in the original).  Hot-swap tests flip
# between the two databases and assert the answer tracks the epoch.
SOURCE_V2 = SOURCE.replace(
    "        a = new Object;\n",
    "        a = new Object;\n        extra = new Object;\n        a = extra;\n",
)


@pytest.fixture(scope="session")
def compiled_db_v2():
    return compile_database(
        parse_program(SOURCE_V2, include_library=False),
        source_path="serve-test-v2.mj",
    )


@pytest.fixture(scope="session")
def db_path_v2(compiled_db_v2, tmp_path_factory):
    path = tmp_path_factory.mktemp("ptdb") / "serve-test-v2.ptdb"
    compiled_db_v2.save(path)
    return str(path)
