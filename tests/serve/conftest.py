"""Shared fixtures: one small program compiled into a points-to database.

The compile is session-scoped — every serve test reads from the same
immutable database, which is exactly the serving model (solve once,
query many).
"""

import pytest

from repro.ir import parse_program
from repro.serve import PointsToDatabase, compile_database

# Exercises every query kind: allocations (points-to), a copy chain
# (aliases / factoring), a field store through a call (mod-ref, callers),
# and a cross-thread publication plus a thread-private allocation
# (escaped and captured verdicts).
SOURCE = """
class Worker extends Thread {
    method run() {
        private = new Object;
        shared = Main.channel;
        sync shared;
    }
}
class Helper {
    field f : Object;
    method keep(x : Object) {
        this.f = x;
    }
}
class Main {
    static field channel : Object;
    static method main() {
        a = new Object;
        b = a;
        c = new Helper;
        h = new Helper;
        h.keep(a);
        Main.channel = a;
        w = new Worker;
        w.start();
        sync a;
    }
}
"""


@pytest.fixture(scope="session")
def program():
    return parse_program(SOURCE, include_library=False)


@pytest.fixture(scope="session")
def compiled_db(program):
    return compile_database(program, source_path="serve-test.mj")


@pytest.fixture(scope="session")
def db_path(compiled_db, tmp_path_factory):
    path = tmp_path_factory.mktemp("ptdb") / "serve-test.ptdb"
    compiled_db.save(path)
    return str(path)


@pytest.fixture(scope="session")
def loaded_db(db_path):
    return PointsToDatabase.load(db_path)
