"""Batched point queries: the vectorized ``batch`` path of the engine.

The contract under test: ``query_batch`` answers exactly like N
sequential ``query`` calls — same results, same typed errors, same
order — while evaluating homogeneous ``points-to`` misses together and
filling the scalar result cache, and the server's ``batch`` verb rides
the same path without changing any observable (including across a hot
swap, where each epoch's fresh engine cache must forget old answers).
"""

import pytest

from repro.serve import PointsToClient, PointsToServer, QueryEngine
from repro.serve.engine import QueryError


@pytest.fixture()
def engine(loaded_db):
    return QueryEngine(loaded_db)


def _scalar(engine, sub):
    try:
        return engine.query(
            sub["kind"], dict(sub.get("args") or {}), use_cache=False
        )
    except QueryError as err:
        return ("error", err.code)


def _normalize(answer):
    if isinstance(answer, QueryError):
        return ("error", answer.code)
    return answer


POINT_SUBS = [
    {"kind": "points-to", "args": {"variable": "Main.main:a"}},
    {"kind": "points-to", "args": {"variable": "Main.main:b"}},
    {"kind": "points-to", "args": {"variable": "Main.main:c"}},
    {"kind": "points-to", "args": {"variable": "Worker.run:private"}},
]


class TestParity:
    def test_cold_batch_matches_sequential(self, engine, loaded_db):
        fresh = QueryEngine(loaded_db)
        batched = fresh.query_batch([dict(s) for s in POINT_SUBS])
        expected = [_scalar(engine, s) for s in POINT_SUBS]
        assert [_normalize(a) for a in batched] == expected

    def test_warm_batch_matches_cold(self, engine):
        cold = engine.query_batch([dict(s) for s in POINT_SUBS])
        warm = engine.query_batch([dict(s) for s in POINT_SUBS])
        assert warm == cold
        # The second round is pure cache: same result objects come back.
        assert all(w is c for w, c in zip(warm, cold))

    def test_context_sensitive_items_share_one_query(self, engine):
        subs = [
            {"kind": "points-to", "args": {"variable": "Main.main:a", "context": 0}},
            {"kind": "points-to", "args": {"variable": "Main.main:a", "context": 1}},
            {"kind": "points-to", "args": {"variable": "Main.main:b", "context": 1}},
        ]
        batched = engine.query_batch([dict(s) for s in subs])
        expected = [_scalar(engine, s) for s in subs]
        assert [_normalize(a) for a in batched] == expected

    def test_batch_fills_scalar_cache(self, engine):
        (result,) = engine.query_batch(
            [{"kind": "points-to", "args": {"variable": "Main.main:a"}}]
        )
        assert engine.stats()["cache_entries"] == 1
        # A later scalar query is a cache hit: the very same dict.
        assert engine.query("points-to", {"variable": "Main.main:a"}) is result

    def test_duplicate_items_answered_consistently(self, engine):
        sub = {"kind": "points-to", "args": {"variable": "Main.main:a"}}
        a, b = engine.query_batch([dict(sub), dict(sub)])
        assert a == b


class TestScalarFallback:
    def test_mixed_kinds_answered_in_order(self, engine):
        subs = [
            {"kind": "points-to", "args": {"variable": "Main.main:a"}},
            {"kind": "aliases",
             "args": {"variable1": "Main.main:a", "variable2": "Main.main:c"}},
            {"kind": "points-to", "args": {"variable": "No.such:var"}},
            {"kind": "escape", "args": {"heap": "<missing>"}},
        ]
        batched = engine.query_batch([dict(s) for s in subs])
        expected = [_scalar(engine, s) for s in subs]
        assert [_normalize(a) for a in batched] == expected

    def test_typed_errors_stay_in_place(self, engine):
        subs = [
            {"kind": "points-to", "args": {"variable": "No.such:var"}},
            {"kind": "points-to", "args": {"variable": "Main.main:a"}},
            {"kind": "points-to", "args": {}},
        ]
        batched = engine.query_batch(subs)
        assert isinstance(batched[0], QueryError)
        assert batched[0].code == "not-found"
        assert batched[1]["count"] >= 1
        assert isinstance(batched[2], QueryError)
        assert batched[2].code == "bad-argument"

    def test_no_cache_item_bypasses_the_cache(self, engine):
        sub = {
            "kind": "points-to",
            "args": {"variable": "Main.main:a"},
            "no_cache": True,
        }
        (result,) = engine.query_batch([sub])
        assert result["count"] >= 1
        assert engine.stats()["cache_entries"] == 0

    def test_bad_context_type_rejected_like_scalar(self, engine):
        (answer,) = engine.query_batch(
            [{"kind": "points-to",
              "args": {"variable": "Main.main:a", "context": "zero"}}]
        )
        assert isinstance(answer, QueryError)
        assert answer.code == "bad-argument"

    def test_missing_kind_rejected(self, engine):
        (answer,) = engine.query_batch([{"args": {"variable": "Main.main:a"}}])
        assert isinstance(answer, QueryError)
        assert answer.code == "bad-argument"


class TestServerBatchVerb:
    @pytest.fixture()
    def server(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0)
        srv.start()
        yield srv
        srv.shutdown(drain_timeout=2.0)

    def test_wire_batch_matches_wire_queries(self, server):
        with PointsToClient(*server.address) as client:
            responses = client.batch([dict(s) for s in POINT_SUBS])
            for sub, resp in zip(POINT_SUBS, responses):
                assert resp["ok"] is True
                assert resp["result"] == client.query(
                    sub["kind"], sub["args"]
                )

    def test_batch_cache_invalidated_by_hot_swap(self, server, db_path_v2):
        sub = {"kind": "points-to", "args": {"variable": "Main.main:a"}}
        with PointsToClient(*server.address) as client:
            (before,) = client.batch([dict(sub)])
            assert before["result"]["count"] == 1
            # Warm the per-epoch cache, then swap the database.
            (warm,) = client.batch([dict(sub)])
            assert warm["result"]["count"] == 1
            client.reload(path=db_path_v2)
            # The new epoch's engine starts cold: the batched answer
            # reflects the v2 database, not the old cache entry.
            (after,) = client.batch([dict(sub)])
            assert after["result"]["count"] == 2
