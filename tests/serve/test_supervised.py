"""Supervised serving: crash classification, restart, port pinning.

The end-to-end test runs the real ``repro serve`` CLI as a supervised
child with an attempt-scoped injected crash (``abort@serve.dispatch#3~1``
— SIGABRT on the third dispatch of attempt 0 only), and drives it with
the circuit-breaker client: the workload must complete unattended across
the crash and restart, against the *same* port.
"""

import json
import os
import pathlib
import random
import subprocess
import sys
import threading
import time

import pytest

from repro.runtime.errors import WorkerCrashed
from repro.serve import ResilientClient
from repro.serve.supervise import ServeSupervisor

SRC_ROOT = str(pathlib.Path(__file__).resolve().parents[2] / "src")


def _child_env(**extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra)
    return env


class TestPortPinning:
    def test_pin_rewrites_existing_flag(self):
        sup = ServeSupervisor(["prog", "--port", "0", "--db", "x"])
        sup._pin_port(4242)
        assert sup.argv == ["prog", "--port", "4242", "--db", "x"]

    def test_pin_rewrites_equals_form(self):
        sup = ServeSupervisor(["prog", "--port=0"])
        sup._pin_port(4242)
        assert sup.argv == ["prog", "--port=4242"]

    def test_pin_appends_when_missing(self):
        sup = ServeSupervisor(["prog"])
        sup._pin_port(4242)
        assert sup.argv == ["prog", "--port", "4242"]


class TestRestartPolicy:
    def _crashing_child(self, exits):
        """A child argv that exits with the next code from ``exits``
        (tracked via a counter file), simulating crash-then-stable."""
        return exits

    def test_budget_exhaustion_raises_worker_crashed(self, tmp_path):
        sleeps = []
        sup = ServeSupervisor(
            [sys.executable, "-c", "import sys; sys.exit(3)"],
            max_restarts=2,
            backoff_base=0.01,
            backoff_max=0.02,
            jitter=0.0,
            crash_dir=str(tmp_path),
            log=open(os.devnull, "w"),
            sleep=sleeps.append,
            rng=random.Random(7),
        )
        with pytest.raises(WorkerCrashed) as exc:
            sup.run()
        assert exc.value.classification == "crash"
        assert len(sleeps) == 2  # backoff before each allowed restart
        reports = sorted(tmp_path.glob("crash-*.json"))
        assert len(reports) == 3  # one per crashed incarnation
        report = json.loads(reports[0].read_text())
        assert report["attempt"]["classification"] == "crash"
        assert report["attempt"]["exit_code"] == 3

    def test_signal_death_classified(self, tmp_path):
        sup = ServeSupervisor(
            [sys.executable, "-c", "import os; os.abort()"],
            max_restarts=0,
            crash_dir=str(tmp_path),
            log=open(os.devnull, "w"),
            sleep=lambda _s: None,
            rng=random.Random(7),
        )
        with pytest.raises(WorkerCrashed) as exc:
            sup.run()
        assert exc.value.classification == "abort"

    def test_clean_exit_ends_supervision(self):
        sup = ServeSupervisor(
            [sys.executable, "-c", "pass"],
            log=open(os.devnull, "w"),
            sleep=lambda _s: None,
        )
        assert sup.run() == 0
        assert sup.restarts == 0

    def test_attempt_env_exported(self, tmp_path):
        marker = tmp_path / "attempts.txt"
        code = (
            "import os, sys, pathlib\n"
            f"p = pathlib.Path({str(marker)!r})\n"
            "attempt = os.environ['REPRO_SUPERVISOR_ATTEMPT']\n"
            "seen = p.read_text() if p.exists() else ''\n"
            "p.write_text(seen + attempt + ',')\n"
            "sys.exit(1 if len(seen) < 4 else 0)\n"
        )
        sup = ServeSupervisor(
            [sys.executable, "-c", code],
            max_restarts=5,
            backoff_base=0.01,
            backoff_max=0.02,
            jitter=0.0,
            log=open(os.devnull, "w"),
            sleep=lambda _s: None,
            rng=random.Random(7),
        )
        assert sup.run() == 0
        assert marker.read_text() == "0,1,2,"


class TestSupervisedServeEndToEnd:
    def test_crash_restart_same_port_workload_completes(self, db_path, tmp_path):
        """SIGABRT mid-serving, supervised restart, same port, and a
        circuit-breaker client that finishes its workload unattended."""
        crash_dir = tmp_path / "crashes"
        sup = ServeSupervisor(
            [
                sys.executable, "-m", "repro", "serve",
                "--db", db_path, "--port", "0",
            ],
            max_restarts=3,
            backoff_base=0.05,
            backoff_max=0.2,
            jitter=0.0,
            crash_dir=str(crash_dir),
            # Attempt-scoped: only incarnation 0 aborts (on its 3rd
            # dispatched request); the restart runs clean.
            env=_child_env(REPRO_FAULT="abort@serve.dispatch#3~1"),
            log=open(os.devnull, "w"),
            rng=random.Random(7),
        )
        runner = threading.Thread(target=sup.run, daemon=True)
        runner.start()
        try:
            assert sup.ready.wait(timeout=60.0), "server never announced"
            port = sup.port
            answers = []
            with ResilientClient(
                "127.0.0.1",
                port,
                timeout=10.0,
                max_retries=20,
                backoff_base=0.1,
                backoff_max=1.0,
                failure_threshold=30,
                rng=random.Random(7),
            ) as client:
                for _ in range(10):
                    result = client.query(
                        "points-to",
                        {"variable": "Main.main:a"},
                        no_cache=True,
                    )
                    answers.append(result["count"])
            assert answers == [1] * 10
            assert sup.restarts == 1
            assert sup.port == port  # pinned across the restart
            reports = list(crash_dir.glob("crash-*.json"))
            assert len(reports) == 1
            report = json.loads(reports[0].read_text())
            assert report["attempt"]["classification"] == "abort"
        finally:
            sup.stop()
            runner.join(timeout=30.0)
            assert not runner.is_alive()
