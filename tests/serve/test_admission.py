"""Admission control and deadline propagation.

Overload must be *shed*, not queued into collapse: a bounded pending
limit, per-kind caps, a ``retry_after_ms`` hint that scales with
pressure, and client deadlines enforced at dispatch (work whose
deadline passed in the queue never touches a BDD) and mid-query
(through the engine's budget watchdog).
"""

import threading
import time

import pytest

from repro.runtime.errors import SolverTimeout
from repro.serve import PointsToClient, PointsToServer, ServerError


def _slow_evaluator(delay, release=None):
    """An evaluator that holds its admission slot for ``delay`` seconds
    (optionally until ``release`` is set), then checks its budget the
    way real evaluators do in the decode loop."""

    def evaluate(args, budget):
        if release is not None:
            release.wait(delay)
        else:
            time.sleep(delay)
        if budget is not None and budget.expired():
            raise SolverTimeout("deadline passed during evaluation")
        return {"ok": True, "slow": True}

    return evaluate


@pytest.fixture()
def make_server(loaded_db):
    servers = []

    def build(**kwargs):
        srv = PointsToServer(loaded_db, port=0, **kwargs)
        servers.append(srv)
        return srv

    yield build
    for srv in servers:
        srv.shutdown(drain_timeout=2.0)


def _fire_slow(server, release):
    """Occupy one admission slot with a slow no-cache query."""
    server.engine._evaluators["points-to"] = _slow_evaluator(10.0, release)

    def run():
        with PointsToClient(*server.address) as client:
            try:
                client.query(
                    "points-to", {"variable": "Main.main:a"}, no_cache=True
                )
            except (ServerError, ConnectionError):
                pass

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while server.admission.pending == 0 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.admission.pending == 1
    return thread


class TestOverload:
    def test_pending_limit_rejects_typed(self, make_server):
        server = make_server(max_pending=1, retry_after_ms=150)
        server.start()
        release = threading.Event()
        _fire_slow(server, release)
        try:
            with PointsToClient(*server.address) as client:
                with pytest.raises(ServerError) as exc:
                    client.query("points-to", {"variable": "Main.main:b"})
                assert exc.value.code == "overloaded"
                hint = exc.value.details["retry_after_ms"]
                # Base 150, scaled by (1 + pending/max_pending) = 2x.
                assert 150 <= hint <= 300
                # The health probe still answers under full overload.
                health = client.health()
                assert health["status"] == "ok"
                assert health["pending"] == 1
                # And ping/hello/stats are exempt from admission too.
                assert client.ping()
                assert client.stats()["admission"]["overloaded"] == 1
        finally:
            release.set()

    def test_per_kind_cap(self, make_server):
        server = make_server(
            max_pending=64, kind_limits={"points-to": 1}, retry_after_ms=100
        )
        server.start()
        release = threading.Event()
        _fire_slow(server, release)
        try:
            with PointsToClient(*server.address) as client:
                # Same kind: capped.
                with pytest.raises(ServerError) as exc:
                    client.query("points-to", {"variable": "Main.main:b"})
                assert exc.value.code == "overloaded"
                assert "points-to" in exc.value.message
                # A different kind still gets through.
                result = client.query("escape", {"heap": "Main.main@0:new Object"})
                assert result["verdict"] in ("escaped", "captured", "untracked")
        finally:
            release.set()

    def test_slots_release_after_completion(self, make_server):
        server = make_server(max_pending=1)
        server.start()
        with PointsToClient(*server.address) as client:
            for _ in range(5):
                client.query(
                    "points-to", {"variable": "Main.main:a"}, no_cache=True
                )
            assert server.admission.pending == 0

    def test_overload_counted_separately_from_errors(self, make_server):
        server = make_server(max_pending=1)
        server.start()
        release = threading.Event()
        _fire_slow(server, release)
        try:
            with PointsToClient(*server.address) as client:
                with pytest.raises(ServerError):
                    client.query("points-to", {"variable": "Main.main:b"})
                snap = client.stats()
                assert snap["admission"]["overloaded"] == 1
                assert "overloaded" not in snap["protocol_errors"]
        finally:
            release.set()


class TestDeadlines:
    def test_deadline_already_past_at_dispatch(self, make_server):
        server = make_server()
        server.start()
        with PointsToClient(*server.address) as client:
            with pytest.raises(ServerError) as exc:
                client.query(
                    "points-to", {"variable": "Main.main:a"}, deadline_ms=0
                )
            assert exc.value.code == "deadline-exceeded"
            assert server.metrics.deadline_rejections == 1

    def test_deadline_enforced_mid_query(self, make_server):
        server = make_server()
        server.start()
        server.engine._evaluators["points-to"] = _slow_evaluator(0.25)
        with PointsToClient(*server.address) as client:
            with pytest.raises(ServerError) as exc:
                client.query(
                    "points-to",
                    {"variable": "Main.main:a"},
                    deadline_ms=50,
                    no_cache=True,
                )
            assert exc.value.code == "deadline-exceeded"

    def test_generous_deadline_answers(self, make_server):
        server = make_server()
        server.start()
        with PointsToClient(*server.address) as client:
            result = client.query(
                "points-to", {"variable": "Main.main:a"}, deadline_ms=30_000
            )
            assert result["count"] == 1

    def test_deadline_vs_timeout_binding_constraint(self, make_server):
        # A tight server timeout with a loose client deadline must still
        # report budget-exceeded (the timeout bound), not
        # deadline-exceeded — and vice versa.
        server = make_server()
        server.start()
        server.engine._evaluators["points-to"] = _slow_evaluator(0.25)
        with PointsToClient(*server.address) as client:
            with pytest.raises(ServerError) as exc:
                client.query(
                    "points-to",
                    {"variable": "Main.main:a"},
                    timeout_s=0.05,
                    deadline_ms=30_000,
                    no_cache=True,
                )
            assert exc.value.code == "budget-exceeded"

    def test_batch_shares_connection_deadline(self, make_server):
        server = make_server()
        server.start()
        server.engine._evaluators["points-to"] = _slow_evaluator(0.2)
        with PointsToClient(*server.address) as client:
            results = client.batch(
                [
                    {
                        "kind": "points-to",
                        "args": {"variable": "Main.main:a"},
                        "no_cache": True,
                    },
                    {
                        "kind": "points-to",
                        "args": {"variable": "Main.main:b"},
                        "no_cache": True,
                    },
                ]
            )
            # Without a deadline both answer...
            assert all(r.get("ok") for r in results)

        server.engine.clear_cache()
        with PointsToClient(*server.address) as client:
            response = client.request(
                {
                    "verb": "batch",
                    "deadline_ms": 250,
                    "requests": [
                        {
                            "verb": "query",
                            "kind": "points-to",
                            "args": {"variable": "Main.main:a"},
                            "no_cache": True,
                        },
                        {
                            "verb": "query",
                            "kind": "points-to",
                            "args": {"variable": "Main.main:b"},
                            "no_cache": True,
                        },
                    ],
                }
            )
            # ...with a 250ms budget for the whole batch, the first
            # (200ms) fits and the second finds the deadline spent.
            results = response["result"]["results"]
            assert results[0]["ok"] is True
            assert results[1]["ok"] is False
            assert results[1]["error"]["code"] == "deadline-exceeded"
