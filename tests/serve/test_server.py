"""Wire-protocol fault matrix and concurrency behavior of the server.

Every test runs a real in-process :class:`PointsToServer` on an
ephemeral port and talks to it over real sockets — the assertions cover
the acceptance matrix: malformed JSON, oversized requests, unknown
verbs, mid-request disconnects, budget-blowing queries, connection
limits, and concurrent clients hammering one cached query.
"""

import io
import json
import socket
import threading
import time

import pytest

from repro.serve import (
    MAX_BATCH,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    PointsToClient,
    PointsToServer,
    ServerError,
)


@pytest.fixture()
def server(loaded_db):
    srv = PointsToServer(loaded_db, port=0, log=io.StringIO())
    srv.start()
    yield srv
    srv.shutdown(drain_timeout=3.0)


@pytest.fixture()
def client(server):
    with PointsToClient(*server.address) as c:
        yield c


def _raw(server, payload: bytes, count: int = 1):
    """Send raw bytes on a fresh connection, read ``count`` responses."""
    with socket.create_connection(server.address, timeout=5) as sock:
        sock.sendall(payload)
        reader = sock.makefile("rb")
        return [json.loads(reader.readline()) for _ in range(count)]


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestHappyPath:
    def test_hello(self, server, client):
        hello = client.hello()
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["db"]["db_id"] == server.db.db_id

    def test_ping(self, client):
        assert client.ping() is True

    def test_query_roundtrip(self, client):
        result = client.query("points-to", {"variable": "Main.main:a"})
        assert result["count"] >= 1

    def test_batch_mixed(self, client):
        responses = client.batch(
            [
                {"kind": "points-to", "args": {"variable": "Main.main:a"}},
                {"kind": "points-to", "args": {"variable": "No.such:var"}},
                {"kind": "escape", "args": {"heap": "<global>"}},
            ]
        )
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        assert responses[1]["error"]["code"] == "not-found"
        assert responses[2]["ok"] is True

    def test_stats_verb(self, client):
        client.query("points-to", {"variable": "Main.main:a"})
        stats = client.stats()
        assert stats["requests_total"] >= 1
        assert "points-to" in stats["queries"]
        assert stats["engine"]["db_id"]


class TestFaultMatrix:
    def test_malformed_json(self, server):
        (resp,) = _raw(server, b'{"verb": nope}\n')
        assert resp["ok"] is False
        assert resp["error"]["code"] == "parse-error"

    def test_non_object_request(self, server):
        (resp,) = _raw(server, b'"just a string"\n')
        assert resp["error"]["code"] == "invalid-request"

    def test_non_string_verb(self, server):
        (resp,) = _raw(server, b'{"verb": 7}\n')
        assert resp["error"]["code"] == "invalid-request"

    def test_unknown_verb(self, server):
        (resp,) = _raw(server, b'{"verb": "frobnicate"}\n')
        assert resp["error"]["code"] == "unknown-verb"

    def test_unknown_query_kind(self, client):
        with pytest.raises(ServerError) as exc:
            client.query("dominators", {})
        assert exc.value.code == "unknown-query"

    def test_oversized_request_then_recovery(self, server):
        huge = b'{"verb": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        ping = b'{"id": 2, "verb": "ping"}\n'
        big, pong = _raw(server, huge + ping, count=2)
        assert big["error"]["code"] == "too-large"
        assert pong["ok"] is True

    def test_oversized_batch(self, server):
        subs = ",".join('{"verb":"query","kind":"x"}' for _ in range(MAX_BATCH + 1))
        (resp,) = _raw(
            server, b'{"verb":"batch","requests":[' + subs.encode() + b"]}\n"
        )
        assert resp["error"]["code"] == "too-large"

    def test_mid_request_disconnect_survived(self, server):
        sock = socket.create_connection(server.address, timeout=5)
        sock.sendall(b'{"verb": "pi')  # no newline — partial request
        sock.close()
        # The handler must drop the partial line and exit; the server
        # keeps answering new connections.
        assert _wait(lambda: not server.handler_threads())
        (resp,) = _raw(server, b'{"verb": "ping"}\n')
        assert resp["ok"] is True

    def test_budget_exceeded_keeps_connection_open(self, client):
        with pytest.raises(ServerError) as exc:
            client.query(
                "points-to", {"variable": "Main.main:a"},
                timeout_s=0.0, no_cache=True,
            )
        assert exc.value.code == "budget-exceeded"
        assert client.ping() is True

    def test_blank_lines_ignored(self, server):
        (resp,) = _raw(server, b'\n\n{"verb": "ping"}\n')
        assert resp["ok"] is True


class TestLimits:
    def test_max_requests_per_connection_recycles(self, loaded_db):
        srv = PointsToServer(
            loaded_db, port=0, max_requests_per_connection=2, log=io.StringIO()
        )
        srv.start()
        try:
            with socket.create_connection(srv.address, timeout=5) as sock:
                reader = sock.makefile("rb")
                sock.sendall(b'{"verb": "ping"}\n' * 3)
                assert json.loads(reader.readline())["ok"] is True
                assert json.loads(reader.readline())["ok"] is True
                assert reader.readline() == b""  # recycled after 2
        finally:
            srv.shutdown(drain_timeout=3.0)

    def test_max_connections_refused(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, max_connections=1, log=io.StringIO())
        srv.start()
        try:
            with PointsToClient(*srv.address) as first:
                assert first.ping() is True
                with socket.create_connection(srv.address, timeout=5) as second:
                    refusal = json.loads(second.makefile("rb").readline())
                assert refusal["error"]["code"] == "shutting-down"
                assert first.ping() is True  # the survivor is unaffected
        finally:
            srv.shutdown(drain_timeout=3.0)

    def test_idle_timeout_closes_connection(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, idle_timeout=0.2, log=io.StringIO())
        srv.start()
        try:
            with socket.create_connection(srv.address, timeout=5) as sock:
                reader = sock.makefile("rb")
                time.sleep(0.6)
                assert reader.readline() == b""
        finally:
            srv.shutdown(drain_timeout=3.0)


class TestConcurrency:
    def test_concurrent_clients_one_compute(self, loaded_db):
        """N clients hammer the same query: one evaluator run, the rest
        are (engine or wire) cache hits."""
        srv = PointsToServer(loaded_db, port=0, log=io.StringIO())
        original = srv.engine._evaluators["points-to"]

        def slow(args, budget):
            time.sleep(0.3)
            return original(args, budget)

        srv.engine._evaluators["points-to"] = slow
        srv.start()
        clients = 8
        results, errors = [], []

        def worker():
            try:
                with PointsToClient(*srv.address) as c:
                    results.append(
                        c.query("points-to", {"variable": "Main.main:a"})
                    )
            except Exception as err:  # noqa: BLE001 - collected for assert
                errors.append(err)

        try:
            threads = [threading.Thread(target=worker) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
            assert not errors
            assert len(results) == clients
            assert all(r == results[0] for r in results)
            snap = srv.metrics.snapshot()["queries"]["points-to"]
            assert snap["computes"] == 1
            assert snap["cache_hits"] == clients - 1
            assert snap["requests"] == clients
        finally:
            srv.shutdown(drain_timeout=3.0)

    def test_wire_cache_populated(self, server):
        line = b'{"id": 1, "verb": "query", "kind": "points-to", ' \
               b'"args": {"variable": "Main.main:a"}}\n'
        first, second = _raw(server, line + line, count=2)
        assert first == second
        assert len(server._wire_cache) == 1


class TestShutdown:
    def test_shutdown_verb_stops_server(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, log=io.StringIO())
        srv.start()
        with PointsToClient(*srv.address) as c:
            assert c.shutdown()["stopping"] is True
        assert _wait(lambda: not srv._accept_thread.is_alive())
        srv.shutdown(drain_timeout=3.0)  # idempotent
        assert _wait(lambda: not srv.handler_threads())

    def test_no_leaked_threads_after_shutdown(self, loaded_db):
        srv = PointsToServer(loaded_db, port=0, log=io.StringIO())
        srv.start()
        with PointsToClient(*srv.address) as c:
            c.ping()
        srv.shutdown(drain_timeout=3.0)
        assert _wait(
            lambda: not any(
                t.name.startswith("serve-") for t in threading.enumerate()
            )
        )

    def test_metrics_dumped_on_shutdown(self, loaded_db):
        log = io.StringIO()
        srv = PointsToServer(loaded_db, port=0, log=log)
        srv.start()
        with PointsToClient(*srv.address) as c:
            c.query("points-to", {"variable": "Main.main:a"})
        srv.shutdown(drain_timeout=3.0)
        text = log.getvalue()
        assert "final metrics" in text
        assert "points-to" in text
