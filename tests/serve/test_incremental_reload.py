"""End-to-end edit loop: recompile a fact diff, hot-swap it into a live
server, and verify in-flight connections never drop.

This is the ISSUE 8 acceptance path: ``repro recompile --db OLD --diff
EDIT -o NEW --notify HOST:PORT`` makes a running ``repro serve`` answer
from the new database — same connections, next request, new epoch.
"""

import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.incremental import FactDiff, recompile_database, write_fixpoint_bundle
from repro.ir import parse_program
from repro.serve import PointsToClient, PointsToServer, compile_database_with_state

SOURCE = """
class Helper {
    field f : Object;
    method keep(x : Object) {
        this.f = x;
    }
}
class Main {
    static method main() {
        a = new Object;
        b = a;
        c = new Helper;
        h = new Helper;
        h.keep(a);
        spare = new Object;
        sync a;
    }
}
"""

# One new allocation statement: Main.main:c also points at 'spare'.
EDIT = {
    "format": "repro-factdiff 1",
    "add": {"vP0": [["Main.main:c", "Main.main@5:new Object"]]},
}


@pytest.fixture(scope="module")
def baseline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("incserve")
    db, state = compile_database_with_state(
        parse_program(SOURCE, include_library=False)
    )
    db_path = tmp / "app.ptdb"
    db.save(db_path)
    write_fixpoint_bundle(tmp / "app.ptdb.fix", db, state)
    return db, db_path


@pytest.fixture()
def server(baseline):
    db, _ = baseline
    srv = PointsToServer(db, port=0)
    srv.start()
    yield srv
    srv.shutdown(drain_timeout=2.0)


def _count(client, variable="Main.main:c"):
    return client.query("points-to", {"variable": variable})["count"]


class TestRecompileThenReload:
    def test_inflight_connection_survives_the_swap(
        self, baseline, server, tmp_path
    ):
        db, db_path = baseline
        new_path = tmp_path / "app2.ptdb"
        with PointsToClient(*server.address) as client:
            # The connection exists before the edit...
            assert _count(client) == 1
            epoch = client.health()["epoch"]

            res = recompile_database(db, FactDiff.parse(EDIT))
            assert res.db_id != db.db_id
            res.db.save(new_path)

            # ...and the same connection carries the reload and the
            # post-swap queries: nothing is dropped or reconnected.
            ack = client.reload(path=str(new_path), expect_db_id=res.db_id)
            assert ack["reloaded"] is True
            assert ack["db_id"] == res.db_id
            assert _count(client) == 2
            assert client.health()["epoch"] == epoch + 1

    def test_queries_during_swap_never_fail(self, baseline, server, tmp_path):
        db, db_path = baseline
        res = recompile_database(db, FactDiff.parse(EDIT))
        new_path = tmp_path / "app2.ptdb"
        res.db.save(new_path)

        errors = []
        answers = []
        stop = threading.Event()

        def hammer():
            try:
                with PointsToClient(*server.address) as client:
                    while not stop.is_set():
                        answers.append(_count(client))
            except Exception as err:  # pragma: no cover - fail the test
                errors.append(err)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            with PointsToClient(*server.address) as admin:
                for path, db_id in (
                    (new_path, res.db_id),
                    (db_path, db.db_id),
                    (new_path, res.db_id),
                ):
                    admin.reload(path=str(path), expect_db_id=db_id)
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors
        # Every answer came from one of the two epochs, none dropped.
        assert answers and set(answers) <= {1, 2}

    def test_cli_notify_drives_the_swap(self, baseline, server, tmp_path):
        _, db_path = baseline
        host, port = server.address
        edit_path = tmp_path / "edit.json"
        edit_path.write_text(json.dumps(EDIT))
        new_path = tmp_path / "app3.ptdb"
        with PointsToClient(*server.address) as client:
            before = client.health()
            rc = cli_main(
                [
                    "recompile",
                    "--db", str(db_path),
                    "--diff", str(edit_path),
                    "-o", str(new_path),
                    "--notify", f"{host}:{port}",
                ]
            )
            assert rc == 0
            # The pre-existing connection sees the new epoch.
            after = client.health()
            assert after["epoch"] == before["epoch"] + 1
            assert after["db_id"] != before["db_id"]
            assert _count(client) == 2
        # The sidecar bundle for the *next* edit was written too.
        assert (tmp_path / "app3.ptdb.fix").exists()
