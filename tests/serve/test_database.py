"""The ``.ptdb`` artifact: round-trip fidelity, corruption and version
rejection, and the loaded-vs-fresh differential over corpus entries."""

import json
import pathlib

import pytest

from repro.bench.corpus import corpus_entry
from repro.runtime import InvalidInputError
from repro.serve import PointsToDatabase, QueryEngine, compile_database
from repro.serve.database import FORMAT_VERSION, facts_digest


class TestRoundTrip:
    def test_db_id_stable_across_save_load(self, compiled_db, loaded_db):
        assert loaded_db.db_id == compiled_db.db_id

    def test_bdd_relations_survive(self, compiled_db, loaded_db):
        assert set(loaded_db.relations) == set(compiled_db.relations)
        for name, rel in compiled_db.relations.items():
            assert set(loaded_db.relation(name).tuples()) == set(rel.tuples())

    def test_side_tables_survive(self, compiled_db, loaded_db):
        assert loaded_db.maps == compiled_db.maps
        assert loaded_db.tuples == compiled_db.tuples
        assert loaded_db.escape == compiled_db.escape
        assert loaded_db.site_method == compiled_db.site_method
        assert loaded_db.var_reps == compiled_db.var_reps

    def test_provenance_is_stamped(self, loaded_db):
        meta = loaded_db.meta
        assert meta["format_version"] == FORMAT_VERSION
        assert meta["tool"]["name"] == "repro"
        assert meta["program"]["path"] == "serve-test.mj"
        assert len(meta["program"]["facts_sha256"]) == 64
        assert meta["stats"]["iterations"] > 0
        assert meta["config"]["modref"] is True

    def test_save_is_atomic(self, compiled_db, tmp_path):
        compiled_db.save(tmp_path / "x.ptdb")
        assert [p.name for p in tmp_path.iterdir()] == ["x.ptdb"]

    def test_facts_digest_is_deterministic(self, program):
        from repro.ir.facts import extract_facts

        assert facts_digest(extract_facts(program)) == facts_digest(
            extract_facts(program)
        )


def _lines(db_path):
    return pathlib.Path(db_path).read_text().splitlines()


def _write(tmp_path, lines):
    out = tmp_path / "tampered.ptdb"
    out.write_text("\n".join(lines) + "\n")
    return out


def _tamper_meta(db_path, tmp_path, **updates):
    lines = _lines(db_path)
    meta = json.loads(lines[1][len("meta "):])
    for key, value in updates.items():
        if isinstance(value, dict) and isinstance(meta.get(key), dict):
            meta[key] = dict(meta[key], **value)
        else:
            meta[key] = value
    lines[1] = "meta " + json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return _write(tmp_path, lines)


class TestRejection:
    def test_not_a_ptdb_file(self, tmp_path):
        bad = tmp_path / "bad.ptdb"
        bad.write_text("definitely not a database\n")
        with pytest.raises(InvalidInputError, match="not a repro-ptdb"):
            PointsToDatabase.load(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            PointsToDatabase.load(tmp_path / "absent.ptdb")

    def test_truncated_payload(self, db_path, tmp_path):
        lines = _lines(db_path)
        with pytest.raises(InvalidInputError, match="truncated"):
            PointsToDatabase.load(_write(tmp_path, lines[:-3]))

    def test_corrupt_payload_fails_checksum(self, db_path, tmp_path):
        lines = _lines(db_path)
        lines[-1] = lines[-1] + " 0"
        with pytest.raises(InvalidInputError, match="checksum mismatch"):
            PointsToDatabase.load(_write(tmp_path, lines))

    def test_future_format_version_rejected(self, db_path, tmp_path):
        bad = _tamper_meta(db_path, tmp_path, format_version=FORMAT_VERSION + 1)
        with pytest.raises(InvalidInputError, match="format_version"):
            PointsToDatabase.load(bad)

    def test_tool_major_version_mismatch_rejected(self, db_path, tmp_path):
        bad = _tamper_meta(db_path, tmp_path, tool={"version": "99.0.0"})
        with pytest.raises(InvalidInputError, match="99.0.0"):
            PointsToDatabase.load(bad)

    def test_tool_minor_version_drift_accepted(self, db_path, tmp_path):
        meta = json.loads(_lines(db_path)[1][len("meta "):])
        major = meta["tool"]["version"].split(".")[0]
        ok = _tamper_meta(
            db_path, tmp_path, tool={"version": f"{major}.999.0"}
        )
        assert PointsToDatabase.load(ok).db_id

    def test_missing_relation_schema(self, db_path, tmp_path):
        bad = _tamper_meta(db_path, tmp_path, relations="oops")
        with pytest.raises(InvalidInputError, match="relations"):
            PointsToDatabase.load(bad)


def _sample_queries(db, per_kind=6):
    """A few queries of *every* kind, drawn from the db's own maps."""
    variables = sorted(db.var_reps)[:per_kind]
    methods = db.maps["M"][:per_kind]
    heaps = db.maps["H"][:per_kind]
    queries = [("points-to", {"variable": v}) for v in variables]
    queries += [
        ("aliases", {"variable1": a, "variable2": b})
        for a, b in zip(variables, variables[1:])
    ]
    queries += [("mod-ref", {"method": m}) for m in methods]
    queries += [("callers", {"method": m}) for m in methods]
    queries += [("escape", {"heap": h}) for h in heaps]
    return queries


class TestDifferential:
    """A loaded ``.ptdb`` must answer exactly like the fresh in-process
    solve it was compiled from, for every query kind."""

    @pytest.mark.parametrize("name", ["freetts", "jetty", "nfcchat"])
    def test_loaded_matches_fresh_solve(self, name, tmp_path):
        fresh_db = compile_database(corpus_entry(name).build())
        path = tmp_path / f"{name}.ptdb"
        fresh_db.save(path)
        loaded_db = PointsToDatabase.load(path)
        assert loaded_db.db_id == fresh_db.db_id

        fresh = QueryEngine(fresh_db)
        loaded = QueryEngine(loaded_db)
        queries = _sample_queries(loaded_db)
        assert len({kind for kind, _ in queries}) == 5
        for kind, args in queries:
            assert loaded.query(kind, args) == fresh.query(kind, args), (
                f"{name}: {kind} {args} diverged between loaded and fresh"
            )
