"""Hot-swap database reloads: epoch publication, validation, rollback.

The tentpole guarantees under test:

* a ``reload`` swaps in the candidate atomically — after the ack, every
  *new* request answers from the new database (no stale epoch answers),
* a candidate that fails validation (corrupt file, wrong ``expect_db_id``,
  injected fault) is discarded and the old epoch keeps serving,
* per-epoch caches cannot leak answers across the swap (the wire cache
  is keyed by db_id and cleared; each epoch gets a fresh engine LRU),
* 100 swaps under concurrent query load lose no connections and produce
  only correct answers.
"""

import json
import shutil
import socket
import threading
import time

import pytest

from repro.runtime import faults
from repro.serve import PointsToClient, PointsToServer, ServerError
from repro.serve.engine import QueryError

QUERY = {"verb": "query", "kind": "points-to", "args": {"variable": "Main.main:a"}}


@pytest.fixture()
def server(loaded_db):
    srv = PointsToServer(loaded_db, port=0)
    srv.start()
    yield srv
    srv.shutdown(drain_timeout=2.0)


def _count(client):
    return client.query("points-to", {"variable": "Main.main:a"})["count"]


class TestReloadVerb:
    def test_swap_changes_epoch_and_answers(self, server, db_path, db_path_v2):
        with PointsToClient(*server.address) as client:
            assert _count(client) == 1
            before = client.health()
            result = client.reload(path=db_path_v2)
            assert result["reloaded"] is True
            assert result["epoch"] == before["epoch"] + 1
            assert result["db_id"] != result["previous_db_id"]
            # Same connection, next request: already the new database.
            assert _count(client) == 2
            after = client.health()
            assert after["epoch"] == result["epoch"]
            assert after["db_id"] == result["db_id"]
            assert after["reloads"] == {"ok": 1, "failed": 0}

    def test_default_path_reloads_in_place(self, server, db_path, db_path_v2, tmp_path):
        # The common ops flow: the artifact is rebuilt at the same path,
        # then a bare reload picks it up.
        spare = tmp_path / "rebuilt.ptdb"
        shutil.copyfile(db_path, spare)
        with PointsToClient(*server.address) as client:
            client.reload(path=str(spare))
            assert _count(client) == 1
            shutil.copyfile(db_path_v2, spare)
            result = client.reload()  # no path: reload whence loaded
            assert result["path"] == str(spare)
            assert _count(client) == 2

    def test_expect_db_id_pin_mismatch_keeps_old(self, server, db_path_v2):
        with PointsToClient(*server.address) as client:
            old = client.health()
            with pytest.raises(ServerError) as exc:
                client.reload(path=db_path_v2, expect_db_id="0" * 16)
            assert exc.value.code == "reload-failed"
            now = client.health()
            assert now["epoch"] == old["epoch"]
            assert now["db_id"] == old["db_id"]
            assert now["reloads"]["failed"] == 1
            assert _count(client) == 1  # still the old database

    def test_corrupt_candidate_keeps_old(self, server, db_path, tmp_path):
        bad = tmp_path / "corrupt.ptdb"
        data = bytearray(open(db_path, "rb").read())
        data[len(data) // 2] ^= 0xFF  # flip a payload bit: checksum fails
        bad.write_bytes(bytes(data))
        with PointsToClient(*server.address) as client:
            old_id = client.health()["db_id"]
            with pytest.raises(ServerError) as exc:
                client.reload(path=str(bad))
            assert exc.value.code == "reload-failed"
            assert client.health()["db_id"] == old_id
            assert _count(client) == 1

    def test_missing_candidate_keeps_old(self, server):
        with PointsToClient(*server.address) as client:
            with pytest.raises(ServerError) as exc:
                client.reload(path="/nonexistent/no.ptdb")
            assert exc.value.code == "reload-failed"
            assert client.ping()

    def test_swap_fault_keeps_old(self, server, db_path_v2):
        # The serve.swap seam fires after validation but before
        # publication — the worst possible instant.  The old epoch must
        # survive it.
        faults.arm("exception@serve.swap")
        try:
            with PointsToClient(*server.address) as client:
                old = client.health()
                with pytest.raises(ServerError) as exc:
                    client.reload(path=db_path_v2)
                assert exc.value.code == "reload-failed"
                assert client.health()["epoch"] == old["epoch"]
                assert _count(client) == 1
        finally:
            faults.disarm()

    def test_db_load_fault_keeps_old(self, server, db_path_v2):
        faults.arm("exception@serve.db_load")
        try:
            with PointsToClient(*server.address) as client:
                with pytest.raises(ServerError) as exc:
                    client.reload(path=db_path_v2)
                assert exc.value.code == "reload-failed"
                assert _count(client) == 1
        finally:
            faults.disarm()

    def test_reload_invalidates_wire_and_engine_caches(
        self, server, db_path, db_path_v2
    ):
        with PointsToClient(*server.address) as client:
            assert _count(client) == 1
            assert _count(client) == 1  # second hit: wire-cached
            assert len(server._wire_cache) > 0
            old_engine = server.engine
            client.reload(path=db_path_v2)
            assert len(server._wire_cache) == 0
            assert server.engine is not old_engine
            assert server.engine.stats()["cache_entries"] == 0
            assert _count(client) == 2


class TestSighupPath:
    def test_hup_flag_triggers_reload_in_serve_loop(
        self, loaded_db, db_path, db_path_v2, tmp_path
    ):
        # Drive the serve_forever loop (where SIGHUP lands) in a thread;
        # the handler only sets the flag the loop consumes, so setting
        # the flag directly exercises everything but the signal itself.
        spare = tmp_path / "live.ptdb"
        shutil.copyfile(db_path, spare)
        from repro.serve import PointsToDatabase

        srv = PointsToServer(PointsToDatabase.load(str(spare)), port=0)
        srv.start()
        loop = threading.Thread(target=srv.serve_forever, daemon=True)
        loop.start()
        try:
            shutil.copyfile(db_path_v2, spare)
            srv._hup.set()
            deadline = time.monotonic() + 5.0
            while srv.epoch == 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert srv.epoch == 2
            with PointsToClient(*srv.address) as client:
                assert _count(client) == 2
        finally:
            srv.shutdown(drain_timeout=2.0)
            loop.join(timeout=5.0)


class TestSwapStorm:
    def test_100_swaps_under_concurrent_load(self, server, db_path, db_path_v2):
        """The acceptance drill: 100 hot swaps while clients hammer the
        server.  Zero dropped connections, zero untyped errors, and
        after every reload ack a fresh connection sees the new epoch's
        answer."""
        expected = {  # db path -> correct points-to count for Main.main:a
            db_path: 1,
            db_path_v2: 2,
        }
        stop = threading.Event()
        failures = []
        answers = []

        def worker():
            try:
                with PointsToClient(*server.address) as client:
                    while not stop.is_set():
                        result = client.query(
                            "points-to", {"variable": "Main.main:a"}
                        )
                        count = result["count"]
                        if count not in (1, 2):
                            failures.append(f"impossible count {count}")
                            return
                        answers.append(count)
            except ServerError as err:
                failures.append(f"typed server error: {err}")
            except Exception as err:  # noqa: BLE001 - the test's whole point
                failures.append(f"{type(err).__name__}: {err}")

        workers = [threading.Thread(target=worker) for _ in range(4)]
        for t in workers:
            t.start()
        try:
            with PointsToClient(*server.address) as admin:
                for i in range(100):
                    target = db_path_v2 if i % 2 == 0 else db_path
                    ack = admin.reload(path=target)
                    assert ack["epoch"] == i + 2
                    # Post-ack, a *fresh* connection must answer from the
                    # new database — the no-stale-answers guarantee.
                    with PointsToClient(*server.address) as probe:
                        count = probe.query(
                            "points-to", {"variable": "Main.main:a"}
                        )["count"]
                        assert count == expected[target], (
                            f"stale answer after swap {i}: got {count}, "
                            f"expected {expected[target]}"
                        )
        finally:
            stop.set()
            for t in workers:
                t.join(timeout=10.0)
        assert not failures, failures
        assert len(answers) > 0
        assert server.epoch == 101
        assert server.metrics.reloads_ok == 100
        assert server.metrics.reloads_failed == 0


class TestReloadApi:
    def test_reload_without_source_path_fails_typed(self, program):
        # A database compiled in-process (never saved) has no file to
        # reload from.  (The shared compiled_db fixture won't do: saving
        # it for the db_path fixture *sets* its path.)
        from repro.serve import compile_database

        db = compile_database(program, source_path="in-process.mj")
        srv = PointsToServer(db, port=0)
        with pytest.raises(QueryError) as exc:
            srv.reload()
        assert exc.value.code == "reload-failed"
        assert srv.metrics.reloads_failed == 1

    def test_concurrent_reloads_serialize(self, server, db_path, db_path_v2):
        errors = []

        def swap(path):
            try:
                server.reload(path=path)
            except QueryError as err:
                errors.append(err)

        threads = [
            threading.Thread(target=swap, args=(p,))
            for p in (db_path_v2, db_path, db_path_v2, db_path)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not errors
        # Four successful reloads, serialized: epochs 2..5, no gaps.
        assert server.epoch == 5
        assert server.metrics.reloads_ok == 4
