"""Connection reaping: idle-timeout and per-connection request recycling
under concurrent clients, plus the wire-cache keying regression test.

The wire cache used to key on the raw request line alone; after a hot
swap an identical line would have replayed the *old* database's answer.
The key is now ``(db_id, line)`` — these tests pin that down.
"""

import socket
import threading
import time

import pytest

from repro.serve import PointsToClient, PointsToServer


def _wait(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.fixture()
def make_server(loaded_db):
    servers = []

    def build(**kwargs):
        srv = PointsToServer(loaded_db, port=0, **kwargs)
        srv.start()
        servers.append(srv)
        return srv

    yield build
    for srv in servers:
        srv.shutdown(drain_timeout=2.0)


class TestIdleReaping:
    def test_idle_connections_reaped_concurrently(self, make_server):
        srv = make_server(idle_timeout=0.3)
        sockets = []
        for _ in range(6):
            client = PointsToClient(*srv.address)
            assert client.ping()
            sockets.append(client)
        assert _wait(lambda: len(srv.handler_threads()) == 6)
        # Go silent: every handler must time out and exit on its own.
        assert _wait(lambda: len(srv.handler_threads()) == 0, timeout=5.0)
        for client in sockets:
            # The reaped socket yields EOF client-side.
            assert client._reader.read_line() is None
            client.close()
        # The server is still perfectly healthy for new connections.
        with PointsToClient(*srv.address) as fresh:
            assert fresh.ping()

    def test_active_connection_survives_idle_window(self, make_server):
        srv = make_server(idle_timeout=0.4)
        with PointsToClient(*srv.address) as client:
            for _ in range(5):
                time.sleep(0.15)  # always inside the idle window
                assert client.ping()


class TestRequestRecycling:
    def test_max_requests_recycles_under_concurrency(self, make_server):
        srv = make_server(max_requests_per_connection=3)
        failures = []

        def worker(worker_id):
            try:
                for _round in range(3):
                    client = PointsToClient(*srv.address)
                    for _ in range(3):
                        assert client.ping()
                    # Request 4 of the connection: server has hung up.
                    try:
                        client.ping()
                        failures.append(f"{worker_id}: 4th request answered")
                    except ConnectionError:
                        pass
                    client.close()
            except Exception as err:  # noqa: BLE001
                failures.append(f"{worker_id}: {type(err).__name__}: {err}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=20.0)
        assert not failures, failures
        assert _wait(lambda: len(srv.handler_threads()) == 0)
        # Recycling never counts as a rejection.
        assert srv.metrics.connections_rejected == 0
        assert srv.metrics.connections_accepted >= 12


class TestWireCacheKeying:
    def test_wire_cache_keys_carry_db_id(self, make_server):
        srv = make_server()
        with PointsToClient(*srv.address) as client:
            client.query("points-to", {"variable": "Main.main:a"})
        assert srv._wire_cache, "expected a wire-cache entry"
        for key in srv._wire_cache:
            db_id, line = key
            assert db_id == srv.db.db_id
            assert isinstance(line, bytes)

    def test_identical_line_not_replayed_across_swap(
        self, make_server, db_path, db_path_v2
    ):
        """The regression: same request line before and after a hot swap
        must hit different cache slots and answer from the new epoch."""
        srv = make_server()
        line = (
            b'{"verb": "query", "id": 1, "kind": "points-to", '
            b'"args": {"variable": "Main.main:a"}}\n'
        )

        def raw_roundtrip():
            import json

            with socket.create_connection(srv.address, timeout=5.0) as sock:
                sock.sendall(line)
                buf = b""
                while not buf.endswith(b"\n"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise ConnectionError("EOF")
                    buf += chunk
            return json.loads(buf)

        first = raw_roundtrip()
        assert first["result"]["count"] == 1
        again = raw_roundtrip()  # byte-identical line: wire-cache hit
        assert again["result"]["count"] == 1
        srv.reload(path=db_path_v2)
        swapped = raw_roundtrip()
        assert swapped["result"]["count"] == 2, (
            "wire cache replayed a stale pre-swap response"
        )
        srv.reload(path=db_path)
        back = raw_roundtrip()
        assert back["result"]["count"] == 1
