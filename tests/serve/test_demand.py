"""Demand-driven resolution: goal-directed answers for snapshot misses.

The contract under test is *answer identity*: every query the demand
evaluator answers (a points-to/alias lookup for a variable outside the
database's budget class, a mod-ref lookup against a database compiled
with ``--no-modref``) must return exactly what an exhaustive compile
would have — on both BDD backends.  Around that core: the typed
``demand-unavailable`` / ``budget-exceeded`` errors, the ``demand``
response field, negative-result caching, batch routing, the metrics
surface, and hot-swap invalidation of the per-epoch evaluator.
"""

import io

import pytest

from repro.ir import parse_program
from repro.runtime import ResourceBudget, SolverTimeout
from repro.serve import (
    DemandEvaluator,
    PointsToDatabase,
    PointsToServer,
    QueryEngine,
    QueryError,
    compile_database,
)

from .conftest import SOURCE_V2

BACKENDS = ["reference", "packed"]

# The conftest program's methods split cleanly: ``Helper.*`` covers
# Helper.keep's variables and leaves every Main/Worker variable outside
# the budget class, so points-to/alias queries for them go to demand.
BUDGET_CLASS = "Helper.*"

CONTEXTS = (None, 0, 1)


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture(scope="module")
def full_db(program, backend):
    return compile_database(program, source_path="serve-test.mj", backend=backend)


@pytest.fixture(scope="module")
def restricted_db(program, backend):
    return compile_database(
        program,
        source_path="serve-test.mj",
        backend=backend,
        budget_class=BUDGET_CLASS,
    )


@pytest.fixture(scope="module")
def nomodref_db(program, backend):
    return compile_database(
        program, source_path="serve-test.mj", backend=backend, modref=False
    )


@pytest.fixture(scope="module")
def full_engine(full_db):
    return QueryEngine(full_db)


@pytest.fixture(scope="module")
def restricted_engine(restricted_db):
    return QueryEngine(restricted_db)


@pytest.fixture(scope="module")
def nomodref_engine(nomodref_db):
    return QueryEngine(nomodref_db)


class TestBudgetClassCompile:
    def test_restriction_recorded_and_variables_partitioned(self, restricted_db):
        assert restricted_db.budget_class == BUDGET_CLASS
        nvars = len(restricted_db.maps["V"])
        covered = [v for v in range(nvars) if restricted_db.covers_variable(v)]
        uncovered = [v for v in range(nvars) if not restricted_db.covers_variable(v)]
        assert covered, "budget class matched no variables"
        assert uncovered, "budget class left nothing for demand to answer"

    def test_full_db_covers_everything(self, full_db):
        assert full_db.budget_class is None
        assert all(
            full_db.covers_variable(v) for v in range(len(full_db.maps["V"]))
        )


class TestPointsToIdentity:
    def test_every_variable_every_context(
        self, full_engine, restricted_engine, restricted_db
    ):
        for v in range(len(restricted_db.maps["V"])):
            for c in CONTEXTS:
                args = {"variable": v, "context": c}
                want = full_engine.query("points-to", args)
                got = restricted_engine.query("points-to", args)
                assert got["heaps"] == want["heaps"], (v, c)
                assert got["count"] == want["count"]
                assert want["demand"] is False
                assert got["demand"] == (not restricted_db.covers_variable(v))

    def test_covered_variable_answers_from_snapshot(self, restricted_engine):
        got = restricted_engine.query("points-to", {"variable": "Helper.keep:x"})
        assert got["demand"] is False

    def test_uncovered_variable_flagged_as_demand(self, restricted_engine):
        got = restricted_engine.query("points-to", {"variable": "Main.main:a"})
        assert got["demand"] is True
        assert got["count"] >= 1


class TestAliasIdentity:
    PAIRS = [
        ("Main.main:a", "Main.main:b"),  # both uncovered, must alias
        ("Main.main:a", "Main.main:c"),  # both uncovered, must not
        ("Main.main:a", "Helper.keep:x"),  # mixed coverage
        ("Helper.keep:x", "Helper.keep:this"),  # both covered
        ("Main.main:w", "Main.main:h"),
    ]

    def test_alias_pairs(self, full_engine, restricted_engine, restricted_db):
        for v1, v2 in self.PAIRS:
            args = {"variable1": v1, "variable2": v2}
            want = full_engine.query("aliases", args)
            got = restricted_engine.query("aliases", args)
            assert got["common_heaps"] == want["common_heaps"], (v1, v2)
            assert got["may_alias"] == want["may_alias"]
            uncovered = not all(
                restricted_db.covers_variable(restricted_db.var_id(v))
                for v in (v1, v2)
            )
            assert got["demand"] == uncovered
            assert want["demand"] is False


class TestModRefIdentity:
    def test_every_method_every_context(
        self, full_engine, nomodref_engine, full_db
    ):
        for m in range(len(full_db.maps["M"])):
            for c in CONTEXTS:
                args = {"method": m, "context": c}
                want = full_engine.query("mod-ref", args)
                got = nomodref_engine.query("mod-ref", args)
                assert got["mod"] == want["mod"], (m, c)
                assert got["ref"] == want["ref"], (m, c)
                assert want["demand"] is False
                assert got["demand"] is True


class TestTypedErrors:
    def test_demand_disabled_points_to(self, restricted_db):
        engine = QueryEngine(restricted_db, enable_demand=False)
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {"variable": "Main.main:a"})
        assert exc.value.code == "demand-unavailable"
        assert "budget class" in str(exc.value)

    def test_demand_disabled_mod_ref_keeps_unsupported(self, nomodref_db):
        # Pre-demand engines reported `unsupported`; opting out keeps it.
        engine = QueryEngine(nomodref_db, enable_demand=False)
        with pytest.raises(QueryError) as exc:
            engine.query("mod-ref", {"method": "Helper.keep"})
        assert exc.value.code == "unsupported"

    def test_demand_query_budget_exceeded_is_typed(self, restricted_db):
        engine = QueryEngine(restricted_db)
        with pytest.raises(QueryError) as exc:
            engine.query(
                "points-to", {"variable": "Main.main:a"},
                timeout=0.0, use_cache=False,
            )
        assert exc.value.code == "budget-exceeded"
        # The engine (and its demand evaluator) survive the fault: the
        # same query with a sane budget answers correctly afterwards.
        got = engine.query("points-to", {"variable": "Main.main:a"})
        assert got["demand"] is True
        assert got["count"] >= 1

    def test_evaluator_budget_fault_then_recovery(self, restricted_db):
        ev = DemandEvaluator(
            restricted_db, backend=restricted_db.manager.backend_name
        )
        v = restricted_db.var_id("Main.main:a")
        with pytest.raises(SolverTimeout):
            ev.points_to(v, budget=ResourceBudget(timeout=0).start())
        # The interrupted seed was not marked consumed: retrying without
        # a budget completes the fixpoint and answers.
        rel = ev.points_to(v)
        assert len(list(rel.tuples())) >= 1


class TestNegativeCaching:
    def test_not_found_is_cached(self, full_db):
        engine = QueryEngine(full_db)
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {"variable": "No.where:x"})
        assert exc.value.code == "not-found"
        assert engine.stats()["cache_entries"] == 1

        def boom(args, budget):
            raise AssertionError("negative result was not served from cache")

        engine._evaluators["points-to"] = boom
        with pytest.raises(QueryError) as exc:
            engine.query("points-to", {"variable": "No.where:x"})
        assert exc.value.code == "not-found"

    def test_batch_replays_cached_negative(self, full_db):
        engine = QueryEngine(full_db)
        with pytest.raises(QueryError):
            engine.query("points-to", {"variable": "No.where:x"})
        out = engine.query_batch(
            [{"kind": "points-to", "args": {"variable": "No.where:x"}}]
        )
        assert isinstance(out[0], QueryError)
        assert out[0].code == "not-found"


class TestBatchRouting:
    def test_uncovered_items_route_to_demand(
        self, full_engine, restricted_db
    ):
        engine = QueryEngine(restricted_db)
        out = engine.query_batch(
            [
                {"kind": "points-to", "args": {"variable": "Helper.keep:x"}},
                {"kind": "points-to", "args": {"variable": "Main.main:a"}},
            ]
        )
        assert out[0]["demand"] is False
        assert out[1]["demand"] is True
        want = full_engine.query("points-to", {"variable": "Main.main:a"})
        assert out[1]["heaps"] == want["heaps"]


class TestObservability:
    def test_engine_stats_and_metrics(self, restricted_db):
        engine = QueryEngine(restricted_db)
        # a and c are distinct V representatives (b collapses into a).
        engine.query("points-to", {"variable": "Main.main:a"})
        engine.query("points-to", {"variable": "Main.main:c"})
        st = engine.stats()["demand"]
        assert st["enabled"] is True
        assert st["solves"] >= 1
        assert st["seeded"].get("m$vP$bf") == 2
        snap = engine.metrics.snapshot()["queries"]["points-to"]["demand"]
        assert snap["hits"] == 2
        assert snap["misses"] == 0
        assert snap["budget_exceeded"] == 0
        assert snap["latency_s"]["count"] == 2

    def test_unavailable_counts_as_miss(self, restricted_db):
        engine = QueryEngine(restricted_db, enable_demand=False)
        with pytest.raises(QueryError):
            engine.query("points-to", {"variable": "Main.main:a"})
        snap = engine.metrics.snapshot()["queries"]["points-to"]["demand"]
        assert snap["misses"] == 1
        assert snap["hits"] == 0

    def test_stats_report_unavailable_reason(self, restricted_db):
        engine = QueryEngine(restricted_db, enable_demand=False)
        assert engine.stats()["demand"]["enabled"] is False


class TestHotSwapInvalidation:
    @pytest.fixture(scope="class")
    def restricted_paths(self, program, tmp_path_factory):
        base = tmp_path_factory.mktemp("demand-swap")
        v1 = compile_database(
            program, source_path="serve-test.mj", budget_class=BUDGET_CLASS
        )
        v2 = compile_database(
            parse_program(SOURCE_V2, include_library=False),
            source_path="serve-test-v2.mj",
            budget_class=BUDGET_CLASS,
        )
        p1, p2 = str(base / "v1.ptdb"), str(base / "v2.ptdb")
        v1.save(p1)
        v2.save(p2)
        return p1, p2

    def test_reload_drops_demand_state_and_tracks_new_db(self, restricted_paths):
        p1, p2 = restricted_paths
        server = PointsToServer(PointsToDatabase.load(p1), log=io.StringIO())
        old = server._state.engine
        r1 = old.query("points-to", {"variable": "Main.main:a"})
        assert r1["demand"] is True
        assert r1["count"] == 1
        assert old._demand_eval is not None

        server.reload(path=p2)
        new = server._state.engine
        assert new is not old
        # Fresh epoch, fresh engine: every derived demand sub-relation
        # from the old epoch is unreachable.
        assert new._demand_eval is None
        r2 = new.query("points-to", {"variable": "Main.main:a"})
        assert r2["demand"] is True
        assert r2["count"] == 2
