"""The serve fault matrix: every chaos seam, in-process.

For each seam (``serve.accept``, ``serve.dispatch``, ``serve.db_load``,
``serve.swap``) the contract is the same — the injected fault costs at
most the request (or connection) it hits, surfaces as a typed error or
a clean connection drop, and the server keeps serving everything else.
The chaos *bench* replays the same matrix against a real subprocess;
these tests keep the seams honest at unit speed.
"""

import threading
import time

import pytest

from repro.runtime import faults
from repro.serve import (
    ConnectionLostError,
    PointsToClient,
    PointsToServer,
    ResilientClient,
    ServerError,
)


@pytest.fixture()
def server(loaded_db):
    srv = PointsToServer(loaded_db, port=0)
    srv.start()
    yield srv
    faults.disarm()
    srv.shutdown(drain_timeout=2.0)


def _query(client):
    return client.query(
        "points-to", {"variable": "Main.main:a"}, no_cache=True
    )


class TestDispatchSeam:
    def test_dispatch_fault_is_typed_and_isolated(self, server):
        # Fault on the 2nd dispatch only (stride resets nothing: one
        # fault, then due again every arrival — so pin it with a huge
        # stride).
        faults.arm("exception@serve.dispatch#2%1000000")
        with PointsToClient(*server.address) as client:
            assert _query(client)["count"] == 1
            with pytest.raises(ServerError) as exc:
                _query(client)
            assert exc.value.code == "server-error"
            assert "injected" in exc.value.message
            # Same connection, next request: business as usual.
            assert _query(client)["count"] == 1

    def test_intermittent_dispatch_faults(self, server):
        # Due at hit 1, every 5th arrival: requests 1, 6, 11, ... fail.
        faults.arm("exception@serve.dispatch%5")
        failures = 0
        with PointsToClient(*server.address) as client:
            for _ in range(20):
                try:
                    _query(client)
                except ServerError:
                    failures += 1
        assert failures == 4  # hits 1, 6, 11, 16
        assert server.metrics.in_flight == 0

    def test_resilient_client_rides_out_dispatch_faults(self, server):
        faults.arm("exception@serve.dispatch%7")
        completed = 0
        with ResilientClient(*server.address, max_retries=5) as client:
            for _ in range(10):
                try:
                    client.query(
                        "points-to", {"variable": "Main.main:a"}, no_cache=True
                    )
                    completed += 1
                except ServerError:
                    # server-error is not retried (could be non-idempotent);
                    # the point is the *connection* survives.
                    pass
        assert completed >= 7


class TestAcceptSeam:
    def test_accept_fault_drops_connection_not_listener(self, server):
        # Every 3rd accepted connection is dropped at the seam.
        faults.arm("exception@serve.accept#3%1000000")
        ok, dropped = 0, 0
        for _ in range(6):
            try:
                with PointsToClient(*server.address) as client:
                    client.ping()
                    ok += 1
            except (ConnectionLostError, ConnectionError):
                dropped += 1
        assert dropped == 1
        assert ok == 5
        assert server.metrics.connections_rejected == 1

    def test_resilient_client_reconnects_through_accept_faults(self, server):
        faults.arm("exception@serve.accept%3")
        with ResilientClient(
            *server.address, max_retries=6, backoff_base=0.01, backoff_max=0.05
        ) as client:
            for _ in range(8):
                assert client.ping()


class TestLoadAndSwapSeams:
    def test_db_load_fault_rejects_reload_only(self, server, db_path_v2):
        faults.arm("exception@serve.db_load")
        with PointsToClient(*server.address) as client:
            with pytest.raises(ServerError) as exc:
                client.reload(path=db_path_v2)
            assert exc.value.code == "reload-failed"
            assert _query(client)["count"] == 1
        assert server.metrics.reloads_failed == 1

    def test_swap_fault_with_queries_in_flight(self, server, db_path_v2):
        faults.arm("exception@serve.swap")
        stop = threading.Event()
        errors = []

        def load():
            try:
                with PointsToClient(*server.address) as client:
                    while not stop.is_set():
                        assert _query(client)["count"] == 1
            except Exception as err:  # noqa: BLE001
                errors.append(err)

        worker = threading.Thread(target=load)
        worker.start()
        try:
            time.sleep(0.05)
            with PointsToClient(*server.address) as admin:
                with pytest.raises(ServerError):
                    admin.reload(path=db_path_v2)
        finally:
            stop.set()
            worker.join(timeout=10.0)
        assert not errors
        assert server.epoch == 1


class TestMatrixSweep:
    @pytest.mark.parametrize(
        "spec, probe_still_serves",
        [
            ("exception@serve.dispatch#1%1000000", True),
            ("exception@serve.accept#1%1000000", True),
            ("exception@serve.db_load", True),
            ("exception@serve.swap", True),
        ],
    )
    def test_every_seam_leaves_server_alive(
        self, server, db_path_v2, spec, probe_still_serves
    ):
        faults.arm(spec)
        site = spec.split("@")[1].split("#")[0].split("%")[0]
        try:
            if site == "serve.dispatch":
                with PointsToClient(*server.address) as client:
                    with pytest.raises(ServerError):
                        client.ping()
            elif site == "serve.accept":
                with pytest.raises((ConnectionError, ServerError)):
                    with PointsToClient(*server.address) as client:
                        client.ping()
            else:
                with PointsToClient(*server.address) as client:
                    with pytest.raises(ServerError):
                        client.reload(path=db_path_v2)
        finally:
            faults.disarm()
        with PointsToClient(*server.address) as probe:
            assert probe.ping() is probe_still_serves
            assert _query(probe)["count"] == 1
