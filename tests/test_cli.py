"""Tests for the command-line interface."""

import pytest

from repro.cli import main

VULNERABLE = """
class Main {
    static method main() {
        pw = new String;
        chars = pw.toCharArray();
        spec = new PBEKeySpec;
        spec.init(chars);
        var narrow : String;
        o = new Object;
        narrow = (String) o;
        sync o;
    }
}
"""

CLEAN = """
class Main {
    static method main() {
        a = new Object;
        b = a;
    }
}
"""


@pytest.fixture()
def vulnerable_file(tmp_path):
    path = tmp_path / "vuln.mj"
    path.write_text(VULNERABLE)
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN)
    return str(path)


class TestStats:
    def test_stats_output(self, clean_file, capsys):
        assert main(["stats", clean_file, "--no-library"]) == 0
        out = capsys.readouterr().out
        assert "methods:" in out
        assert "call paths:" in out


class TestAnalyze:
    def test_ci_analyze(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-library"]) == 0
        out = capsys.readouterr().out
        assert "context-insensitive points-to" in out

    def test_cs_analyze_with_var(self, clean_file, capsys):
        code = main(
            [
                "analyze",
                clean_file,
                "--no-library",
                "--context-sensitive",
                "--var",
                "Main.main:a",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "context-sensitive points-to" in out
        assert "new Object" in out

    def test_bad_var_spec(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-library", "--var", "oops"]) == 2

    def test_dump_dir(self, clean_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            ["analyze", clean_file, "--no-library", "--dump-dir", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "vP.tuples").exists()


class TestQueries:
    def test_escape_query(self, clean_file, capsys):
        # Exit 3 (EXIT_SOLVE_FALLBACK): answered, but via a full solve
        # because no --db was given.
        assert main(["query", clean_file, "--no-library", "--kind", "escape"]) == 3
        out = capsys.readouterr().out
        assert "escaped 1" in out  # just the global

    def test_vuln_query_flags_bad_program(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "vuln"]) == 1
        assert "VULNERABLE" in capsys.readouterr().out

    def test_vuln_query_passes_clean_program(self, clean_file, capsys):
        assert main(["query", clean_file, "--kind", "vuln"]) == 3
        assert "clean" in capsys.readouterr().out

    def test_casts_query(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "casts"]) == 3
        out = capsys.readouterr().out
        assert "may fail" in out  # (String) o is not provably safe

    def test_devirt_query(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "devirt"]) == 3
        out = capsys.readouterr().out
        assert "monomorphic" in out

    def test_refinement_query(self, clean_file, capsys):
        assert main(["query", clean_file, "--no-library", "--kind", "refinement"]) == 3
        out = capsys.readouterr().out
        assert "multi-typed" in out
        assert "context-sensitive (full)" in out


DATALOG_TC = """\
.domains
N 8
.relations
edge(a : N0, b : N1) input
path(a : N0, b : N1) output
.rules
path(a, b) :- edge(a, b).
path(a, c) :- path(a, b), edge(b, c).
"""


@pytest.fixture()
def datalog_setup(tmp_path):
    dl = tmp_path / "tc.dl"
    dl.write_text(DATALOG_TC)
    facts = tmp_path / "facts"
    facts.mkdir()
    (facts / "edge.tuples").write_text("0 1\n1 2\n2 3\n")
    return dl, facts


class TestErrorReporting:
    """Malformed input gives a one-line diagnostic and a distinct exit
    code — never a raw traceback."""

    def test_missing_program_file_exit_66(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.mj")]) == 66
        err = capsys.readouterr().err
        assert "input not found" in err
        assert "Traceback" not in err

    def test_malformed_source_exit_65(self, tmp_path, capsys):
        bad = tmp_path / "bad.mj"
        bad.write_text("class Main { static method main() { a = ; } }")
        assert main(["analyze", str(bad), "--no-library"]) == 65
        err = capsys.readouterr().err
        assert "line 1" in err
        assert "Traceback" not in err

    def test_usage_error_exit_2(self, clean_file):
        with pytest.raises(SystemExit) as exc:
            main(["query", clean_file, "--kind", "nonsense"])
        assert exc.value.code == 2

    def test_malformed_datalog_exit_65(self, tmp_path, capsys):
        bad = tmp_path / "bad.dl"
        bad.write_text(".domains\nN 8\n.relations\npath(a : N0, b : N1 output\n")
        assert main(["datalog", str(bad)]) == 65
        err = capsys.readouterr().err
        assert "bad.dl" in err and "line 4" in err
        assert "Traceback" not in err

    def test_malformed_fact_file_exit_65(self, tmp_path, datalog_setup, capsys):
        dl, facts = datalog_setup
        (facts / "edge.tuples").write_text("0 1\nbroken line\n")
        assert main(["datalog", str(dl), "--facts", str(facts)]) == 65
        err = capsys.readouterr().err
        assert "edge.tuples:2" in err
        assert "Traceback" not in err

    def test_missing_fact_dir_exit_66(self, tmp_path, datalog_setup, capsys):
        dl, _ = datalog_setup
        assert main(["datalog", str(dl), "--facts", str(tmp_path / "no")]) == 66
        assert "input not found" in capsys.readouterr().err


class TestDatalogSubcommand:
    def test_solve_and_dump(self, tmp_path, datalog_setup, capsys):
        dl, facts = datalog_setup
        out = tmp_path / "out"
        code = main(
            ["datalog", str(dl), "--facts", str(facts), "--out", str(out)]
        )
        assert code == 0
        assert "path: 6 tuples" in capsys.readouterr().out
        rows = {
            tuple(map(int, line.split()))
            for line in (out / "path.tuples").read_text().splitlines()
            if line and not line.startswith("#")
        }
        assert (0, 3) in rows and len(rows) == 6

    def test_domain_override(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        assert main(["datalog", str(dl), "--facts", str(facts),
                     "--domain", "N=16"]) == 0

    def test_bad_domain_override(self, datalog_setup, capsys):
        dl, _ = datalog_setup
        assert main(["datalog", str(dl), "--domain", "N=banana"]) == 2


class TestPlanFlags:
    def test_explain_plan(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts), "--explain-plan"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimizer passes:" in out
        assert "stratum" in out
        assert "CopyInto" in out
        assert "[x" in out  # per-op execution-cost annotations

    def test_no_opt(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts), "--no-opt",
             "--explain-plan"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "unoptimized" in out
        assert "path: 6 tuples" in out

    def test_disable_pass(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts),
             "--disable-pass", "hoist,cse", "--explain-plan"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slot#" not in out  # hoisting disabled: no preamble slots
        assert "path: 6 tuples" in out

    def test_unknown_pass_exit_65(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts),
             "--disable-pass", "bogus"]
        )
        assert code == 65
        err = capsys.readouterr().err
        assert "unknown optimizer pass" in err
        assert "Traceback" not in err

    def test_profile_table(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts), "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "applies" in out
        assert "path(" in out

    def test_profile_json(self, datalog_setup, capsys):
        import json

        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts), "--profile-json"]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("["):])
        assert payload and {"rule", "applications", "seconds",
                            "tuples_produced"} <= set(payload[0])

    def test_analyze_profile_and_no_opt(self, clean_file, capsys):
        code = main(
            ["analyze", clean_file, "--no-library", "--no-opt", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "context-insensitive points-to" in out
        assert "applies" in out

    def test_same_answer_opt_and_noopt(self, datalog_setup, tmp_path, capsys):
        dl, facts = datalog_setup
        out_opt = tmp_path / "o1"
        out_noopt = tmp_path / "o2"
        assert main(["datalog", str(dl), "--facts", str(facts),
                     "--out", str(out_opt)]) == 0
        assert main(["datalog", str(dl), "--facts", str(facts), "--no-opt",
                     "--out", str(out_noopt)]) == 0
        assert (out_opt / "path.tuples").read_text() == (
            out_noopt / "path.tuples"
        ).read_text()


class TestBudgetFlags:
    def test_generous_budget_runs_normally(self, clean_file, capsys):
        code = main(
            ["analyze", clean_file, "--no-library", "--timeout", "120",
             "--node-budget", "10000000"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "context-insensitive points-to" in captured.out
        assert "degraded" not in captured.err

    def test_no_degrade_budget_exhaustion_exit_75(self, clean_file, capsys):
        code = main(
            ["analyze", clean_file, "--no-library", "--context-sensitive",
             "--node-budget", "40", "--no-degrade"]
        )
        assert code == 75
        err = capsys.readouterr().err
        assert "budget exhausted" in err
        assert "Traceback" not in err

    def test_degraded_run_flags_result(self, clean_file, capsys):
        code = main(
            ["analyze", clean_file, "--no-library", "--context-sensitive",
             "--timeout", "120", "--node-budget", "40"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "degraded:" in captured.err
        assert "final=context_insensitive" in captured.err

    def test_checkpoint_dir_flag(self, clean_file, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        code = main(
            ["analyze", clean_file, "--no-library", "--context-sensitive",
             "--timeout", "120", "--node-budget", "40",
             "--checkpoint-dir", str(ckpt)]
        )
        assert code == 0
        assert (ckpt / "context_sensitive.ckpt").exists()

    def test_iteration_cap_exit_75(self, datalog_setup, capsys):
        dl, facts = datalog_setup
        code = main(
            ["datalog", str(dl), "--facts", str(facts),
             "--max-iterations", "1"]
        )
        assert code == 75
        assert "budget exhausted" in capsys.readouterr().err


class TestIsolate:
    """``--isolate``: supervised worker processes behind the CLI."""

    def test_isolated_analyze_matches_in_process(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-library",
                     "--context-sensitive"]) == 0
        in_process = capsys.readouterr().out
        assert main(["analyze", clean_file, "--no-library",
                     "--context-sensitive", "--isolate"]) == 0
        isolated = capsys.readouterr().out
        # Same tuple count and call paths, give or take timing text.
        assert "3 tuples" in isolated
        assert "1 call paths" in isolated
        assert "3 (context, variable, heap) tuples" in in_process

    def test_multi_program_parallel(self, clean_file, vulnerable_file, capsys):
        code = main(["analyze", clean_file, vulnerable_file,
                     "--context-sensitive", "--isolate", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("points-to") == 2
        # Order matches the command line, not completion order.
        assert out.index(clean_file) < out.index(vulnerable_file)

    def test_crashed_worker_exit_70(self, clean_file, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT", "abort@solver.stratum")
        code = main(["analyze", clean_file, "--no-library",
                     "--context-sensitive", "--isolate", "--no-degrade",
                     "--retries", "0"])
        assert code == 70
        err = capsys.readouterr().err
        assert "worker failed (abort)" in err
        assert "Traceback" not in err

    def test_crash_steps_down_ladder(self, clean_file, capsys, monkeypatch):
        # Faults scoped to attempt 0 kill the full rung; the supervisor
        # steps down and the fallback answers.
        monkeypatch.setenv("REPRO_FAULT", "abort@solver.stratum#25~1")
        code = main(["analyze", clean_file, "--no-library",
                     "--context-sensitive", "--isolate", "--retries", "0"])
        assert code == 0
        captured = capsys.readouterr()
        assert "degraded to mode=" in captured.err

    def test_poisoned_program_does_not_stop_others(
        self, clean_file, vulnerable_file, tmp_path, capsys
    ):
        missing = str(tmp_path / "gone.mj")
        code = main(["analyze", clean_file, missing, vulnerable_file,
                     "--context-sensitive", "--isolate", "--jobs", "2",
                     "--no-degrade", "--retries", "0"])
        assert code == 70
        captured = capsys.readouterr()
        assert captured.out.count("points-to") == 2
        assert "worker failed" in captured.err

    def test_dump_dir_rejected_with_multiple_programs(
        self, clean_file, vulnerable_file, tmp_path, capsys
    ):
        code = main(["analyze", clean_file, vulnerable_file,
                     "--dump-dir", str(tmp_path / "out")])
        assert code == 2

    def test_memory_limit_flag_accepted(self, clean_file, capsys):
        code = main(["analyze", clean_file, "--no-library", "--isolate",
                     "--memory-limit", "1024"])
        assert code == 0
        assert "points-to" in capsys.readouterr().out


class TestCompileDb:
    def test_compile_and_query_db(self, clean_file, tmp_path, capsys):
        db = str(tmp_path / "clean.ptdb")
        assert main(["compile-db", clean_file, "--no-library",
                     "--out", db]) == 0
        out = capsys.readouterr().out
        assert "compiled" in out
        assert "relations:" in out

        assert main(["query", "--kind", "points-to", "--db", db,
                     "--var", "Main.main:a"]) == 0
        out = capsys.readouterr().out
        assert "new Object" in out

    def test_default_out_path(self, clean_file, capsys):
        assert main(["compile-db", clean_file, "--no-library"]) == 0
        import pathlib

        expected = pathlib.Path(clean_file).with_suffix(".ptdb")
        assert expected.exists()

    def test_query_db_all_kinds(self, clean_file, tmp_path, capsys):
        db = str(tmp_path / "clean.ptdb")
        assert main(["compile-db", clean_file, "--no-library",
                     "--out", db]) == 0
        capsys.readouterr()
        assert main(["query", "--kind", "aliases", "--db", db,
                     "--var", "Main.main:a", "--var2", "Main.main:b"]) == 0
        assert "may alias" in capsys.readouterr().out
        assert main(["query", "--kind", "callers", "--db", db,
                     "--method", "Main.main"]) == 0
        assert "call sites" in capsys.readouterr().out
        assert main(["query", "--kind", "mod-ref", "--db", db,
                     "--method", "Main.main"]) == 0
        assert "mod" in capsys.readouterr().out
        assert main(["query", "--kind", "escape", "--db", db,
                     "--heap", "<global>"]) == 0
        assert "escaped" in capsys.readouterr().out

    def test_query_db_unknown_name_is_dataerr(self, clean_file, tmp_path,
                                              capsys):
        db = str(tmp_path / "clean.ptdb")
        assert main(["compile-db", clean_file, "--no-library",
                     "--out", db]) == 0
        code = main(["query", "--kind", "points-to", "--db", db,
                     "--var", "No.such:var"])
        assert code == 65
        assert "unknown variable" in capsys.readouterr().err

    def test_solve_kind_rejected_with_db(self, clean_file, tmp_path, capsys):
        db = str(tmp_path / "clean.ptdb")
        assert main(["compile-db", clean_file, "--no-library",
                     "--out", db]) == 0
        code = main(["query", "--kind", "vuln", "--db", db])
        assert code == 2
        assert "fresh solve" in capsys.readouterr().err


class TestQueryNotice:
    def test_solve_query_prints_compile_db_hint(self, clean_file, capsys):
        # Distinct exit code: answered, but only by a whole-program solve.
        assert main(["query", "--kind", "escape", clean_file,
                     "--no-library"]) == 3
        err = capsys.readouterr().err
        assert "solved the whole program" in err
        assert "compile-db" in err
        assert "--demand" in err

    def test_demand_kind_without_db_is_usage_error(self, capsys):
        code = main(["query", "--kind", "points-to"])
        assert code == 2
        assert "--db" in capsys.readouterr().err

    def test_query_without_db_or_program_is_usage_error(self, capsys):
        code = main(["query", "--kind", "escape"])
        assert code == 2
        assert "program" in capsys.readouterr().err


class TestDefaultJobs:
    def test_default_jobs_is_clamped_cpu_count(self):
        import os

        from repro.runtime.worker import MAX_POOL_WORKERS, default_jobs

        jobs = default_jobs()
        assert 1 <= jobs <= MAX_POOL_WORKERS
        assert jobs == max(1, min(MAX_POOL_WORKERS, os.cpu_count() or 1))

    def test_pool_clamps_oversized_request(self):
        from repro.runtime.worker import MAX_POOL_WORKERS, WorkerPool

        pool = WorkerPool(supervisor=None, jobs=10_000)
        assert pool.jobs == MAX_POOL_WORKERS
