"""Tests for the command-line interface."""

import pytest

from repro.cli import main

VULNERABLE = """
class Main {
    static method main() {
        pw = new String;
        chars = pw.toCharArray();
        spec = new PBEKeySpec;
        spec.init(chars);
        var narrow : String;
        o = new Object;
        narrow = (String) o;
        sync o;
    }
}
"""

CLEAN = """
class Main {
    static method main() {
        a = new Object;
        b = a;
    }
}
"""


@pytest.fixture()
def vulnerable_file(tmp_path):
    path = tmp_path / "vuln.mj"
    path.write_text(VULNERABLE)
    return str(path)


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN)
    return str(path)


class TestStats:
    def test_stats_output(self, clean_file, capsys):
        assert main(["stats", clean_file, "--no-library"]) == 0
        out = capsys.readouterr().out
        assert "methods:" in out
        assert "call paths:" in out


class TestAnalyze:
    def test_ci_analyze(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-library"]) == 0
        out = capsys.readouterr().out
        assert "context-insensitive points-to" in out

    def test_cs_analyze_with_var(self, clean_file, capsys):
        code = main(
            [
                "analyze",
                clean_file,
                "--no-library",
                "--context-sensitive",
                "--var",
                "Main.main:a",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "context-sensitive points-to" in out
        assert "new Object" in out

    def test_bad_var_spec(self, clean_file, capsys):
        assert main(["analyze", clean_file, "--no-library", "--var", "oops"]) == 2

    def test_dump_dir(self, clean_file, tmp_path, capsys):
        out_dir = tmp_path / "out"
        code = main(
            ["analyze", clean_file, "--no-library", "--dump-dir", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "vP.tuples").exists()


class TestQueries:
    def test_escape_query(self, clean_file, capsys):
        assert main(["query", clean_file, "--no-library", "--kind", "escape"]) == 0
        out = capsys.readouterr().out
        assert "escaped 1" in out  # just the global

    def test_vuln_query_flags_bad_program(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "vuln"]) == 1
        assert "VULNERABLE" in capsys.readouterr().out

    def test_vuln_query_passes_clean_program(self, clean_file, capsys):
        assert main(["query", clean_file, "--kind", "vuln"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_casts_query(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "casts"]) == 0
        out = capsys.readouterr().out
        assert "may fail" in out  # (String) o is not provably safe

    def test_devirt_query(self, vulnerable_file, capsys):
        assert main(["query", vulnerable_file, "--kind", "devirt"]) == 0
        out = capsys.readouterr().out
        assert "monomorphic" in out

    def test_refinement_query(self, clean_file, capsys):
        assert main(["query", clean_file, "--no-library", "--kind", "refinement"]) == 0
        out = capsys.readouterr().out
        assert "multi-typed" in out
        assert "context-sensitive (full)" in out
