"""Shared fixtures: one small program compiled once, with its fixpoint.

Everything here is session-scoped — the incremental tests edit the same
immutable baseline in different directions, which is exactly the edit
loop's model (one published database, many candidate diffs).
"""

import pytest

from repro.incremental import FactSet, write_fixpoint_bundle
from repro.ir import parse_program
from repro.serve import compile_database_with_state

# The same shape as the serve-layer fixture program: allocations, a copy
# chain, a field store through a call, a virtual dispatch, and a
# cross-thread publication — so every phase (CI, CS, escape) has real
# work and every editable relation is populated.
SOURCE = """
class Worker extends Thread {
    method run() {
        private = new Object;
        shared = Main.channel;
        sync shared;
    }
}
class Helper {
    field f : Object;
    method keep(x : Object) {
        this.f = x;
    }
    method drop(x : Object) {
        y = x;
    }
}
class Main {
    static field channel : Object;
    static method main() {
        a = new Object;
        b = a;
        c = new Helper;
        h = new Helper;
        h.keep(a);
        spare = new Object;
        Main.channel = a;
        w = new Worker;
        w.start();
        sync a;
    }
}
"""


@pytest.fixture(scope="session")
def program():
    return parse_program(SOURCE, include_library=False)


@pytest.fixture(scope="session")
def compiled(program):
    db, state = compile_database_with_state(program)
    return db, state


@pytest.fixture(scope="session")
def baseline_db(compiled):
    return compiled[0]


@pytest.fixture(scope="session")
def bundle_path(compiled, tmp_path_factory):
    db, state = compiled
    path = tmp_path_factory.mktemp("fix") / "baseline.ptdb.fix"
    write_fixpoint_bundle(path, db, state)
    return path


@pytest.fixture(scope="session")
def factset(baseline_db):
    return FactSet.from_db_meta(baseline_db.meta, "baseline.ptdb")
