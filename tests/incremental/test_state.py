"""FactSet: rebuild from database meta, edit semantics, Facts parity."""

import pytest

from repro.incremental import FactDiff, FactDiffError, FactSet
from repro.ir.facts import extract_facts


class TestFromDbMeta:
    def test_roundtrips_the_extracted_facts(self, program, factset):
        facts = extract_facts(program)
        for rel, rows in facts.relations.items():
            assert sorted(map(tuple, rows)) == sorted(
                map(tuple, factset.relations[rel])
            ), rel
        for dom, names in facts.maps.items():
            assert list(names) == list(factset.maps[dom]), dom
        assert factset.sizes == dict(facts.sizes, Z=facts.max_arity)
        assert factset.global_site == facts.global_site
        assert sorted(factset.entry_method_ids()) == sorted(
            facts.entry_method_ids()
        )
        assert factset.program.entry.qualified == "Main.main"

    def test_var_id_resolves_through_representatives(self, program, factset):
        facts = extract_facts(program)
        # 'b = a' is copy-factored: both names resolve to one ordinal.
        assert factset.var_id("Main.main", "a") == facts.var_id(
            "Main.main", "a"
        )
        assert factset.var_id("Main.main", "b") == factset.var_id(
            "Main.main", "a"
        )

    def test_unknown_variable_is_typed(self, factset):
        from repro.runtime import InvalidInputError

        with pytest.raises(InvalidInputError):
            factset.var_id("Main.main", "ghost")

    def test_older_database_without_facts_meta(self, baseline_db):
        meta = dict(baseline_db.meta)
        meta.pop("facts")
        with pytest.raises(FactDiffError, match="older tool"):
            FactSet.from_db_meta(meta, "legacy.ptdb")


class TestApplyDiff:
    def _resolved(self, factset, doc):
        return FactDiff.parse(doc).resolve(factset)

    def test_add_produces_new_factset(self, factset):
        vp0 = set(factset.relations["vP0"])
        new_pair = next(
            (v, h)
            for v, _ in sorted(vp0)
            for h in sorted({h for _, h in vp0})
            if (v, h) not in vp0
        )
        diff = self._resolved(factset, {"add": {"vP0": [list(new_pair)]}})
        new_fs, applied = factset.apply_diff(diff)
        assert new_pair in set(new_fs.relations["vP0"])
        assert new_pair not in set(factset.relations["vP0"])  # no mutation
        assert applied.added("vP0") == [new_pair]
        assert applied.is_empty() is False

    def test_idempotent_readd_is_dropped(self, factset):
        present = sorted(factset.relations["vP0"])[0]
        diff = self._resolved(factset, {"add": {"vP0": [list(present)]}})
        new_fs, applied = factset.apply_diff(diff)
        assert applied.is_empty() is True
        assert sorted(new_fs.relations["vP0"]) == sorted(
            factset.relations["vP0"]
        )

    def test_remove_existing_tuple(self, factset):
        victim = sorted(factset.relations["store"])[0]
        diff = self._resolved(factset, {"remove": {"store": [list(victim)]}})
        new_fs, applied = factset.apply_diff(diff)
        assert victim not in set(new_fs.relations["store"])
        assert applied.removed("store") == [victim]

    def test_remove_of_absent_tuple_is_an_error(self, factset):
        vp0 = set(factset.relations["vP0"])
        absent = next(
            (v, h)
            for v, _ in sorted(vp0)
            for h in sorted({h for _, h in vp0})
            if (v, h) not in vp0
        )
        diff = self._resolved(factset, {"remove": {"vP0": [list(absent)]}})
        with pytest.raises(FactDiffError, match="cannot remove"):
            factset.apply_diff(diff)

    def test_from_facts_matches_from_db_meta(self, program, factset):
        snapshot = FactSet.from_facts(extract_facts(program))
        assert snapshot.sizes == factset.sizes
        assert sorted(snapshot.relations["vP0"]) == sorted(
            factset.relations["vP0"]
        )
        assert snapshot.thread_sites == factset.thread_sites
