"""FactDiff parsing, validation, and resolution edge cases.

Every malformed input must fail with a *typed* error rooted at
``InvalidInputError`` — never a KeyError or a silent mis-apply.
"""

import json

import pytest

from repro.incremental import (
    EDITABLE_RELATIONS,
    BaselineMismatchError,
    DiffConflictError,
    FactDiff,
    FactDiffError,
)
from repro.runtime import InvalidInputError


class TestParse:
    def test_minimal_document(self):
        diff = FactDiff.parse({"add": {"vP0": [[0, 0]]}})
        assert diff.added == {"vP0": [(0, 0)]}
        assert diff.is_empty() is False
        assert diff.size() == 1
        assert diff.relations() == ["vP0"]

    def test_empty_document_is_empty(self):
        diff = FactDiff.parse({})
        assert diff.is_empty() is True
        assert diff.size() == 0

    def test_not_an_object(self):
        with pytest.raises(FactDiffError, match="JSON object"):
            FactDiff.parse([1, 2, 3])

    def test_unsupported_format(self):
        with pytest.raises(FactDiffError, match="unsupported diff format"):
            FactDiff.parse({"format": "repro-factdiff 99"})

    def test_unknown_top_level_key(self):
        with pytest.raises(FactDiffError, match="unknown diff keys"):
            FactDiff.parse({"delete": {"vP0": []}})

    def test_unknown_relation(self):
        with pytest.raises(FactDiffError, match="not editable") as exc:
            FactDiff.parse({"add": {"vP": [[0, 0]]}})
        assert isinstance(exc.value, InvalidInputError)

    def test_assign_alias_canonicalizes(self):
        diff = FactDiff.parse({"add": {"assign": [[1, 2]]}})
        assert diff.added == {"assign0": [(1, 2)]}

    def test_wrong_arity(self):
        with pytest.raises(FactDiffError, match="must have 2 elements"):
            FactDiff.parse({"add": {"vP0": [[0, 0, 0]]}})

    def test_bool_element_rejected(self):
        with pytest.raises(FactDiffError, match="ordinal or a name"):
            FactDiff.parse({"add": {"vP0": [[True, 0]]}})

    def test_tuples_must_be_list(self):
        with pytest.raises(FactDiffError, match="must be a list"):
            FactDiff.parse({"add": {"vP0": "not-a-list"}})

    def test_bad_baseline_shape(self):
        with pytest.raises(FactDiffError, match="baseline"):
            FactDiff.parse({"baseline": {"db_id": 42}})
        with pytest.raises(FactDiffError, match="unknown baseline keys"):
            FactDiff.parse({"baseline": {"sha": "ab"}})

    def test_every_editable_relation_parses(self):
        doc = {
            "add": {
                rel: [[0] * len(domains)]
                for rel, domains in EDITABLE_RELATIONS.items()
            }
        }
        diff = FactDiff.parse(doc)
        assert sorted(diff.added) == sorted(EDITABLE_RELATIONS)

    def test_load_rejects_invalid_json(self, tmp_path):
        bad = tmp_path / "edit.json"
        bad.write_text("{not json")
        with pytest.raises(FactDiffError, match="not valid JSON"):
            FactDiff.load(bad)

    def test_load_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FactDiff.load(tmp_path / "absent.json")


class TestDigest:
    def test_sha256_is_order_insensitive(self):
        a = FactDiff.parse({"add": {"vP0": [[0, 1], [2, 3]]}})
        b = FactDiff.parse({"add": {"vP0": [[2, 3], [0, 1]]}})
        assert a.sha256() == b.sha256()

    def test_sha256_distinguishes_add_from_remove(self):
        a = FactDiff.parse({"add": {"vP0": [[0, 1]]}})
        b = FactDiff.parse({"remove": {"vP0": [[0, 1]]}})
        assert a.sha256() != b.sha256()


class TestBaseline:
    def test_db_id_mismatch(self):
        diff = FactDiff.parse({"baseline": {"db_id": "a" * 16}})
        with pytest.raises(BaselineMismatchError, match="does not match"):
            diff.check_baseline("b" * 16, None)

    def test_facts_digest_mismatch(self):
        diff = FactDiff.parse({"baseline": {"facts_sha256": "a" * 64}})
        with pytest.raises(BaselineMismatchError, match="facts digest"):
            diff.check_baseline("b" * 16, "c" * 64)

    def test_matching_baseline_passes(self):
        diff = FactDiff.parse(
            {"baseline": {"db_id": "a" * 16, "facts_sha256": "b" * 64}}
        )
        diff.check_baseline("a" * 16, "b" * 64)  # no raise

    def test_no_baseline_always_passes(self):
        FactDiff.parse({}).check_baseline("whatever", None)


class TestResolve:
    def test_names_resolve_to_ordinals(self, factset):
        heap = next(h for h in factset.maps["H"] if "Main" in h)
        diff = FactDiff.parse({"add": {"vP0": [["Main.main:c", heap]]}})
        resolved = diff.resolve(factset)
        (pair,) = resolved.added["vP0"]
        assert pair == (
            factset.var_id("Main.main", "c"),
            factset.maps["H"].index(heap),
        )

    def test_unknown_variable_name(self, factset):
        diff = FactDiff.parse({"add": {"vP0": [["Main.main:nope", 0]]}})
        with pytest.raises(FactDiffError, match="no variable"):
            diff.resolve(factset)

    def test_unknown_domain_value(self, factset):
        diff = FactDiff.parse({"add": {"vP0": [[0, "new Ghost@Main/9"]]}})
        with pytest.raises(FactDiffError, match="no element"):
            diff.resolve(factset)

    def test_ordinal_out_of_range(self, factset):
        too_big = len(factset.maps["H"])
        diff = FactDiff.parse({"add": {"vP0": [[0, too_big]]}})
        with pytest.raises(FactDiffError, match="outside domain H"):
            diff.resolve(factset)

    def test_add_and_remove_same_tuple_conflicts(self, factset):
        diff = FactDiff.parse(
            {"add": {"vP0": [[0, 0]]}, "remove": {"vP0": [[0, 0]]}}
        )
        with pytest.raises(DiffConflictError, match="both added and removed"):
            diff.resolve(factset)

    def test_alias_and_canonical_conflict_detected(self, factset):
        # The same tuple through both spellings is still one relation.
        diff = FactDiff.parse(
            {"add": {"assign": [[0, 1]]}, "remove": {"assign0": [[0, 1]]}}
        )
        with pytest.raises(DiffConflictError):
            diff.resolve(factset)

    def test_roundtrip_through_json(self, factset, tmp_path):
        doc = {
            "format": "repro-factdiff 1",
            "add": {"vP0": [[1, 1]]},
            "remove": {"store": [[0, 0, 0]]},
            "comment": "roundtrip",
        }
        path = tmp_path / "edit.json"
        path.write_text(json.dumps(doc))
        diff = FactDiff.load(path)
        assert diff.name == str(path)
        assert diff.added == {"vP0": [(1, 1)]}
        assert diff.removed == {"store": [(0, 0, 0)]}
