"""The differential gate: incremental recompiles must be
fingerprint-identical (``db_id``) to from-scratch solves of the same
edited facts — across additions, removals, call-graph edits, and both
kernel backends — plus the no-op, cold-fallback, and provenance paths.
"""

import pytest

from repro.incremental import (
    BaselineMismatchError,
    FactDiff,
    FactDiffError,
    FixpointError,
    FactSet,
    bundle_path_for,
    load_fixpoint_bundle,
    recompile_database,
    write_fixpoint_bundle,
)
from repro.serve import compile_database


def _fresh_id(factset, diff):
    """db_id of a from-scratch compile of the edited fact set."""
    new_fs, _ = factset.apply_diff(FactDiff.parse(diff).resolve(factset))
    return compile_database(facts=new_fs).db_id


def _new_vp0_pair(factset):
    vp0 = set(factset.relations["vP0"])
    return next(
        (v, h)
        for v, _ in sorted(vp0)
        for h in sorted({h for _, h in vp0})
        if (v, h) not in vp0
    )


class TestDifferentialGate:
    def test_vp0_addition_matches_fresh(self, baseline_db, bundle_path, factset):
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=bundle_path
        )
        assert res.modes == {"ci": "delta", "cs": "delta", "escape": "delta"}
        assert res.db_id == _fresh_id(factset, doc)
        assert res.changed() is True

    def test_store_removal_matches_fresh(self, baseline_db, bundle_path, factset):
        victim = sorted(factset.relations["store"])[0]
        doc = {"remove": {"store": [list(victim)]}}
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=bundle_path
        )
        assert res.db_id == _fresh_id(factset, doc)

    def test_mixed_edit_matches_fresh(self, baseline_db, bundle_path, factset):
        doc = {
            "add": {"vP0": [list(_new_vp0_pair(factset))]},
            "remove": {"store": [list(sorted(factset.relations["store"])[0])]},
        }
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=bundle_path
        )
        assert res.db_id == _fresh_id(factset, doc)

    def test_ie0_edit_recomputes_contexts_and_matches(
        self, baseline_db, bundle_path, factset
    ):
        # Add a direct call edge: Helper.drop becomes a target of the
        # invocation that called Helper.keep.  The call graph changes,
        # so path numbering and the context domain are rebuilt.
        site = next(
            i
            for i, name in enumerate(factset.maps["I"])
            if "keep" in name
        )
        target = factset.method_id("Helper.drop")
        doc = {"add": {"IE0": [[site, target]]}}
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=bundle_path
        )
        assert res.modes["cs"] == "recomputed"
        assert res.db_id == _fresh_id(factset, doc)

    def test_both_backends_agree(self, baseline_db, bundle_path, factset):
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        ids = {
            be: recompile_database(
                baseline_db,
                FactDiff.parse(doc),
                fixpoint_path=bundle_path,
                backend=be,
            ).db_id
            for be in ("reference", "packed")
        }
        assert len(set(ids.values())) == 1
        assert ids["packed"] == _fresh_id(factset, doc)


class TestNoOp:
    def test_empty_diff_returns_same_db_id(self, baseline_db, bundle_path):
        res = recompile_database(
            baseline_db, FactDiff.parse({}), fixpoint_path=bundle_path
        )
        assert res.db_id == baseline_db.db_id
        assert res.modes == {"ci": "noop", "cs": "noop", "escape": "noop"}
        assert res.changed() is False

    def test_idempotent_readd_is_a_noop(self, baseline_db, bundle_path, factset):
        present = sorted(factset.relations["vP0"])[0]
        res = recompile_database(
            baseline_db,
            FactDiff.parse({"add": {"vP0": [list(present)]}}),
            fixpoint_path=bundle_path,
        )
        assert res.db_id == baseline_db.db_id
        assert res.modes["ci"] == "noop"


class TestValidation:
    def test_baseline_mismatch_is_typed(self, baseline_db, bundle_path):
        diff = FactDiff.parse({"baseline": {"db_id": "0" * 16}})
        with pytest.raises(BaselineMismatchError):
            recompile_database(baseline_db, diff, fixpoint_path=bundle_path)

    def test_matching_baseline_is_accepted(self, baseline_db, bundle_path):
        diff = FactDiff.parse({"baseline": {"db_id": baseline_db.db_id}})
        res = recompile_database(baseline_db, diff, fixpoint_path=bundle_path)
        assert res.db_id == baseline_db.db_id

    def test_unknown_name_surfaces_as_fact_diff_error(
        self, baseline_db, bundle_path
    ):
        diff = FactDiff.parse({"add": {"vP0": [["Main.main:ghost", 0]]}})
        with pytest.raises(FactDiffError, match="no variable"):
            recompile_database(baseline_db, diff, fixpoint_path=bundle_path)


class TestColdFallback:
    def test_missing_default_bundle_falls_back_cold(
        self, baseline_db, factset, tmp_path
    ):
        # Database saved without a sibling .fix: recompile still works,
        # just from scratch.
        path = tmp_path / "nofix.ptdb"
        baseline_db.save(path)
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        res = recompile_database(str(path), FactDiff.parse(doc))
        assert res.modes == {"ci": "cold", "cs": "cold", "escape": "cold"}
        assert res.db_id == _fresh_id(factset, doc)

    def test_explicit_missing_bundle_path_raises(self, baseline_db, tmp_path):
        diff = FactDiff.parse({"add": {"vP0": [[0, 0]]}})
        with pytest.raises(FileNotFoundError):
            recompile_database(
                baseline_db, diff, fixpoint_path=tmp_path / "absent.fix"
            )

    def test_stale_bundle_for_other_db_falls_back_cold(
        self, baseline_db, bundle_path, factset, tmp_path
    ):
        # A bundle whose db_id does not match the database is ignored.
        text = bundle_path.read_text().replace(
            baseline_db.db_id, "f" * len(baseline_db.db_id)
        )
        stale = tmp_path / "stale.fix"
        stale.write_text(text)
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=stale
        )
        assert res.modes["ci"] == "cold"
        assert res.db_id == _fresh_id(factset, doc)


class TestFixpointBundle:
    def test_roundtrip(self, baseline_db, bundle_path):
        bundle = load_fixpoint_bundle(bundle_path)
        assert bundle.db_id == baseline_db.db_id
        assert sorted(bundle.sections) == ["ci", "cs", "escape"]
        for name in bundle.sections:
            assert bundle.section(name)

    def test_corrupt_magic_is_typed(self, bundle_path, tmp_path):
        bad = tmp_path / "bad.fix"
        bad.write_text("not a bundle\n")
        with pytest.raises(FixpointError, match="not a repro-fixpoint"):
            load_fixpoint_bundle(bad)

    def test_truncated_section_is_typed(self, bundle_path, tmp_path):
        lines = bundle_path.read_text().splitlines()
        bad = tmp_path / "short.fix"
        bad.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(FixpointError):
            load_fixpoint_bundle(bad)

    def test_bundle_path_for(self):
        assert str(bundle_path_for("/x/app.ptdb")).endswith("app.ptdb.fix")


class TestProvenance:
    def test_provenance_chains_parent_and_diff(
        self, baseline_db, bundle_path, factset, tmp_path
    ):
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        diff = FactDiff.parse(doc)
        res = recompile_database(baseline_db, diff, fixpoint_path=bundle_path)
        prov = res.db.meta["provenance"]
        assert prov["parent_db_id"] == baseline_db.db_id
        assert prov["diff_sha256"] == diff.sha256()
        assert prov["edit"]["added"] == {"vP0": 1}
        assert res.parent_db_id == baseline_db.db_id
        # Provenance is volatile meta: a saved+reloaded incremental
        # database keeps its identity AND its history.
        path = tmp_path / "child.ptdb"
        res.db.save(path)
        from repro.serve import PointsToDatabase

        loaded = PointsToDatabase.load(path)
        assert loaded.db_id == res.db_id
        assert loaded.meta["provenance"]["parent_db_id"] == baseline_db.db_id

    def test_provenance_does_not_perturb_db_id(
        self, baseline_db, bundle_path, factset
    ):
        # The whole point of the differential gate: history in, id same.
        doc = {"add": {"vP0": [list(_new_vp0_pair(factset))]}}
        res = recompile_database(
            baseline_db, FactDiff.parse(doc), fixpoint_path=bundle_path
        )
        assert "provenance" in res.db.meta
        assert res.db_id == _fresh_id(factset, doc)

    def test_chained_recompiles(self, baseline_db, bundle_path, factset, tmp_path):
        # Two hops: baseline -> +tuple -> -tuple; the second hop's
        # parent is the first hop's id, and a fresh compile of the
        # doubly-edited facts agrees.
        pair = _new_vp0_pair(factset)
        first = recompile_database(
            baseline_db,
            FactDiff.parse({"add": {"vP0": [list(pair)]}}),
            fixpoint_path=bundle_path,
        )
        mid_fix = tmp_path / "mid.fix"
        write_fixpoint_bundle(mid_fix, first.db, first.state)
        mid_fs = FactSet.from_db_meta(first.db.meta)
        victim = sorted(mid_fs.relations["store"])[0]
        second = recompile_database(
            first.db,
            FactDiff.parse({"remove": {"store": [list(victim)]}}),
            fixpoint_path=mid_fix,
        )
        assert second.parent_db_id == first.db_id
        new_fs, _ = mid_fs.apply_diff(
            FactDiff.parse({"remove": {"store": [list(victim)]}}).resolve(mid_fs)
        )
        assert second.db_id == compile_database(facts=new_fs).db_id
