"""Randomized differential test: every backend vs a truth-table oracle.

Each seeded run drives all registered backends through the *same*
random operation sequence (and / or / diff / xor / not / ite / exist /
restrict, with occasional garbage collections) over a 12-variable
universe, and checks every produced node against a brute-force oracle.
The oracle represents a boolean function as a ``2**NV``-bit integer
(bit ``m`` = value on minterm ``m``), so oracle operations are single
bigint expressions and quantification is a shift-and-mask fold —
independent of everything the kernels share, including the serializer.

Across the seeds this issues ~5k checked kernel operations per backend.
"""

import random

import pytest

from repro.bdd import FALSE, TRUE, available_backends, create_kernel

NV = 12
MINTERMS = 1 << NV
FULL = (1 << MINTERMS) - 1

SEEDS = range(5)
STEPS = 1000

pytestmark = pytest.mark.parametrize("backend", available_backends())


def _zero_masks():
    """``A0[v]`` = minterms where variable ``v`` is 0, built by doubling."""
    out = []
    for v in range(NV):
        pat = (1 << (1 << v)) - 1
        width = 1 << (v + 1)
        while width < MINTERMS:
            pat |= pat << width
            width *= 2
        out.append(pat)
    return out


A0 = _zero_masks()
A1 = [FULL ^ a for a in A0]


def _exist(mask, levels):
    for v in levels:
        half = mask & A0[v] | (mask >> (1 << v)) & A0[v]
        mask = half | (half << (1 << v))
    return mask


def _restrict(mask, assignment):
    for v, val in assignment.items():
        half = (mask >> (1 << v)) & A0[v] if val else mask & A0[v]
        mask = half | (half << (1 << v))
    return mask


def _swap(mask, a, b):
    """Exchange variables ``a`` and ``b`` (minterm-index bit permutation).

    A rename ``{source: target}`` with the target outside the function's
    support is exactly a swap, which is what ``replace`` requires.
    """
    lo, hi = min(a, b), max(a, b)
    shift = (1 << hi) - (1 << lo)
    move_up = A1[lo] & A0[hi]  # minterms with lo=1, hi=0: move up
    move_dn = A0[lo] & A1[hi]  # minterms with lo=0, hi=1: move down
    keep = FULL ^ (move_up | move_dn)
    return mask & keep | (mask & move_up) << shift | (mask & move_dn) >> shift


def _mask_of(m, u, memo):
    """Truth mask of a kernel node, memoized per (live) handle."""
    hit = memo.get(u)
    if hit is not None:
        return hit
    if u == FALSE:
        mask = 0
    elif u == TRUE:
        mask = FULL
    else:
        v = m.var_of(u)
        mask = (
            _mask_of(m, m.low(u), memo) & A0[v]
            | _mask_of(m, m.high(u), memo) & A1[v]
        )
    memo[u] = mask
    return mask


def _run(backend, seed):
    """One seeded op sequence; returns the final truth masks (sorted)."""
    rng = random.Random(seed)
    m = create_kernel(num_vars=NV, backend=backend)
    memo = {}
    nodes = [FALSE, TRUE] + [m.var_bdd(v) for v in range(NV)]
    masks = [0, FULL] + [A1[v] for v in range(NV)]
    for step in range(STEPS):
        op = rng.choice(
            ("and", "or", "diff", "xor", "not", "ite", "exist", "restrict",
             "rel_prod", "rel_prod_replace", "gc")
        )
        i, j, k = (rng.randrange(len(nodes)) for _ in range(3))
        if op == "and":
            u, want = m.and_(nodes[i], nodes[j]), masks[i] & masks[j]
        elif op == "or":
            u, want = m.or_(nodes[i], nodes[j]), masks[i] | masks[j]
        elif op == "diff":
            u, want = m.diff(nodes[i], nodes[j]), masks[i] & (FULL ^ masks[j])
        elif op == "xor":
            u, want = m.xor(nodes[i], nodes[j]), masks[i] ^ masks[j]
        elif op == "not":
            u, want = m.not_(nodes[i]), FULL ^ masks[i]
        elif op == "ite":
            u = m.ite(nodes[i], nodes[j], nodes[k])
            want = masks[i] & masks[j] | (FULL ^ masks[i]) & masks[k]
        elif op == "exist":
            levels = rng.sample(range(NV), rng.randrange(0, 5))
            u, want = m.exist(nodes[i], m.varset(levels)), _exist(masks[i], levels)
        elif op == "restrict":
            assignment = {
                v: rng.random() < 0.5
                for v in rng.sample(range(NV), rng.randrange(1, 4))
            }
            u, want = m.restrict(nodes[i], assignment), _restrict(masks[i], assignment)
        elif op == "rel_prod":
            levels = rng.sample(range(NV), rng.randrange(0, 5))
            u = m.rel_prod(nodes[i], nodes[j], m.varset(levels))
            want = _exist(masks[i] & masks[j], levels)
        elif op == "rel_prod_replace":
            # The fused superop, under its precondition: rename targets
            # are drawn from the quantified levels, so they are outside
            # the support of the rel_prod result (the solver's shape —
            # renames land on the just-vacated domain instance).
            n_pairs = rng.randrange(1, 4)
            chosen = rng.sample(range(NV), 2 * n_pairs)
            quant, sources = chosen[:n_pairs], chosen[n_pairs:]
            mapping = dict(zip(sources, quant))
            u = m.rel_prod_replace(
                nodes[i], nodes[j], m.varset(quant), m.replace_map(mapping)
            )
            want = _exist(masks[i] & masks[j], quant)
            for s, t in mapping.items():
                want = _swap(want, s, t)
        else:  # gc: remap every held handle, drop the stale memo
            mapping = m.collect_garbage(nodes)
            nodes = [mapping[n] for n in nodes]
            memo = {}
            continue
        assert _mask_of(m, u, memo) == want, (
            f"{backend} seed={seed} step={step} op={op} diverged from oracle"
        )
        nodes.append(u)
        masks.append(want)
    return m.node_count(), sorted(set(masks))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_ops_match_truth_table_oracle(backend, seed):
    _run(backend, seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_backends_build_identical_arenas(backend, seed):
    """Canonicity across implementations: the same op sequence yields the
    same node count and the same set of functions as the reference."""
    if backend == "reference":
        pytest.skip("reference is the baseline")
    assert _run(backend, seed) == _run("reference", seed)
