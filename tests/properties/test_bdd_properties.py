"""Property-based tests for the BDD kernel and domain layer.

These check the kernel against a brute-force model: every BDD is compared
to direct truth-table evaluation over a small variable universe.
"""

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD, Domain, FALSE, TRUE, bits_for
from repro.bdd.domain import equality_relation, offset_relation

NVARS = 6


def eval_bdd(mgr, u, mask):
    while u > 1:
        v = mgr.var_of(u)
        u = mgr.high(u) if (mask >> v) & 1 else mgr.low(u)
    return u == TRUE


# A strategy building random boolean functions as (bdd_node, truth_set).
@st.composite
def formulas(draw, mgr_holder, depth=3):
    mgr = mgr_holder
    kind = draw(st.integers(0, 6 if depth > 0 else 2))
    if kind == 0:
        return TRUE
    if kind == 1:
        return FALSE
    if kind == 2:
        v = draw(st.integers(0, NVARS - 1))
        return mgr.var_bdd(v) if draw(st.booleans()) else mgr.nvar_bdd(v)
    a = draw(formulas(mgr_holder, depth - 1))
    b = draw(formulas(mgr_holder, depth - 1))
    if kind == 3:
        return mgr.and_(a, b)
    if kind == 4:
        return mgr.or_(a, b)
    if kind == 5:
        return mgr.xor(a, b)
    return mgr.not_(a)


_MGR = BDD(num_vars=NVARS)


@given(formulas(_MGR), formulas(_MGR))
@settings(max_examples=150, deadline=None)
def test_connectives_match_truth_tables(f, g):
    mgr = _MGR
    conj, disj, d, x = mgr.and_(f, g), mgr.or_(f, g), mgr.diff(f, g), mgr.xor(f, g)
    for mask in range(1 << NVARS):
        ef, eg = eval_bdd(mgr, f, mask), eval_bdd(mgr, g, mask)
        assert eval_bdd(mgr, conj, mask) == (ef and eg)
        assert eval_bdd(mgr, disj, mask) == (ef or eg)
        assert eval_bdd(mgr, d, mask) == (ef and not eg)
        assert eval_bdd(mgr, x, mask) == (ef != eg)


@given(formulas(_MGR))
@settings(max_examples=150, deadline=None)
def test_negation_is_complement(f):
    mgr = _MGR
    nf = mgr.not_(f)
    for mask in range(1 << NVARS):
        assert eval_bdd(mgr, nf, mask) == (not eval_bdd(mgr, f, mask))


@given(formulas(_MGR), st.sets(st.integers(0, NVARS - 1)))
@settings(max_examples=150, deadline=None)
def test_exist_matches_model(f, levels):
    mgr = _MGR
    vs = mgr.varset(levels)
    g = mgr.exist(f, vs)
    for mask in range(1 << NVARS):
        expected = False
        # Try all completions of the quantified variables.
        free_masks = [0]
        for lv in levels:
            free_masks = [m | (b << lv) for m in free_masks for b in (0, 1)]
        base = mask
        for lv in levels:
            base &= ~(1 << lv)
        for fm in free_masks:
            if eval_bdd(mgr, f, base | fm):
                expected = True
                break
        assert eval_bdd(mgr, g, mask) == expected


@given(formulas(_MGR), formulas(_MGR), st.sets(st.integers(0, NVARS - 1)))
@settings(max_examples=150, deadline=None)
def test_rel_prod_is_exist_of_and(f, g, levels):
    mgr = _MGR
    vs = mgr.varset(levels)
    assert mgr.rel_prod(f, g, vs) == mgr.exist(mgr.and_(f, g), vs)


@given(formulas(_MGR))
@settings(max_examples=100, deadline=None)
def test_sat_count_matches_enumeration(f):
    mgr = _MGR
    levels = list(range(NVARS))
    count = sum(1 for mask in range(1 << NVARS) if eval_bdd(mgr, f, mask))
    assert mgr.sat_count(f, levels) == count
    assert len(list(mgr.iter_assignments(f, levels))) == count


@given(formulas(_MGR), st.permutations(list(range(NVARS))))
@settings(max_examples=100, deadline=None)
def test_replace_arbitrary_permutation(f, perm):
    """replace with an arbitrary (often order-inverting) permutation is a
    semantic variable substitution."""
    mgr = _MGR
    mapping = {i: perm[i] for i in range(NVARS) if perm[i] != i}
    if not mapping:
        return
    mid = mgr.replace_map(mapping)
    g = mgr.replace(f, mid)
    for mask in range(1 << NVARS):
        # Build the preimage mask: variable i of f reads bit perm[i] of mask.
        pre = 0
        for i in range(NVARS):
            if (mask >> mapping.get(i, i)) & 1:
                pre |= 1 << i
        assert eval_bdd(mgr, g, mask) == eval_bdd(mgr, f, pre)


@given(st.integers(1, 200), st.integers(0, 199), st.integers(0, 199))
@settings(max_examples=120, deadline=None)
def test_range_bdd_matches_interval(size, lo, hi):
    mgr = BDD(num_vars=bits_for(max(size, 2)))
    d = Domain(mgr, "D", size, list(range(bits_for(size))))
    lo %= size
    hi %= size
    node = d.range_bdd(lo, hi)
    got = {d.decode(b) for b in mgr.iter_assignments(node, d.levels)}
    assert got == set(range(lo, hi + 1))


@given(st.integers(2, 64), st.integers(-20, 40), st.integers(0, 63), st.integers(0, 63))
@settings(max_examples=150, deadline=None)
def test_offset_relation_matches_model(size, delta, lo, hi):
    bits = bits_for(size)
    mgr = BDD(num_vars=4 * bits)
    a = Domain(mgr, "A", size, list(range(0, 2 * bits, 2)))
    b = Domain(mgr, "B", size, list(range(1, 2 * bits, 2)))
    lo %= size
    hi %= size
    rel = offset_relation(a, b, delta, lo, hi)
    levels = list(a.levels) + list(b.levels)
    got = set()
    for assignment in mgr.iter_assignments(rel, levels):
        got.add((a.decode(assignment[: a.bits]), b.decode(assignment[a.bits :])))
    expected = {
        (x, x + delta)
        for x in range(lo, hi + 1)
        if 0 <= x + delta < (1 << bits)
    }
    assert got == expected


@given(st.integers(2, 64), st.integers(2, 64))
@settings(max_examples=80, deadline=None)
def test_equality_relation_matches_model(size_a, size_b):
    bits_a, bits_b = bits_for(size_a), bits_for(size_b)
    mgr = BDD(num_vars=bits_a + bits_b)
    a = Domain(mgr, "A", size_a, list(range(bits_a)))
    b = Domain(mgr, "B", size_b, list(range(bits_a, bits_a + bits_b)))
    eq = equality_relation(a, b)
    levels = list(a.levels) + list(b.levels)
    got = set()
    for assignment in mgr.iter_assignments(eq, levels):
        got.add((a.decode(assignment[: a.bits]), b.decode(assignment[a.bits :])))
    universe = min(1 << bits_a, 1 << bits_b)
    assert got == {(v, v) for v in range(universe)}
