"""Property tests: reordering and serialization preserve semantics."""

from hypothesis import given, settings, strategies as st

from repro.bdd import BDD
from repro.bdd.reorder import count_nodes_under_order, rebuild_with_levels, sift_order
from repro.bdd.serialize import load_bdd, save_bdd

NVARS = 6


def random_function(mgr, rng_ints):
    """Build a BDD from a list of random minterm masks."""
    node = 0
    for mask in rng_ints:
        cube = 1
        for i in range(NVARS):
            lit = mgr.var_bdd(i) if (mask >> i) & 1 else mgr.nvar_bdd(i)
            cube = mgr.and_(cube, lit)
        node = mgr.or_(node, cube)
    return node


minterms = st.lists(st.integers(0, (1 << NVARS) - 1), min_size=0, max_size=12)


@given(minterms, st.permutations(list(range(NVARS))))
@settings(max_examples=60, deadline=None)
def test_rebuild_preserves_satcount(masks, perm):
    src = BDD(num_vars=NVARS)
    f = random_function(src, masks)
    dst = BDD(num_vars=NVARS)
    (g,) = rebuild_with_levels(src, [f], {i: perm[i] for i in range(NVARS)}, dst)
    levels = list(range(NVARS))
    assert src.sat_count(f, levels) == dst.sat_count(g, levels)


@given(minterms)
@settings(max_examples=40, deadline=None)
def test_sifting_never_increases_nodes(masks):
    src = BDD(num_vars=NVARS)
    f = random_function(src, masks)
    blocks = {f"b{i}": [i] for i in range(NVARS)}
    initial = [f"b{i}" for i in range(NVARS)]
    start = count_nodes_under_order(src, [f], initial, blocks)
    _, best = sift_order(src, [f], blocks, initial, max_rounds=1)
    assert best <= start


@given(minterms)
@settings(max_examples=50, deadline=None)
def test_serialize_roundtrip_preserves_satcount(masks):
    import tempfile
    import pathlib

    src = BDD(num_vars=NVARS)
    f = random_function(src, masks)
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "f.bdd"
        save_bdd(src, [f], path)
        dst = BDD(num_vars=NVARS)
        (g,) = load_bdd(dst, path)
        levels = list(range(NVARS))
        assert src.sat_count(f, levels) == dst.sat_count(g, levels)
