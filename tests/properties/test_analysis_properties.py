"""Cross-analysis invariants on randomly generated programs.

These check the paper's precision lattice on arbitrary workloads from the
generator: every analysis is sound relative to the less precise ones.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
    ThreadEscapeAnalysis,
)
from repro.bench.generator import WorkloadParams, generate_program
from repro.ir import extract_facts

params_strategy = st.builds(
    WorkloadParams,
    seed=st.integers(0, 10_000),
    layers=st.integers(3, 7),
    width=st.integers(1, 3),
    fanout=st.integers(1, 3),
    hierarchy_groups=st.integers(1, 2),
    subclasses=st.integers(1, 3),
    recursion_cliques=st.integers(0, 2),
    threads=st.integers(0, 2),
    shared_chain=st.integers(0, 3),
    use_library=st.booleans(),
)


@given(params_strategy)
@settings(max_examples=12, deadline=None)
def test_generated_programs_validate(params):
    program = generate_program(params)
    program.validate()
    stats = program.stats()
    assert stats["methods"] > 0 and stats["allocs"] > 0


@given(params_strategy)
@settings(max_examples=8, deadline=None)
def test_precision_lattice(params):
    """filtered CI ⊆ unfiltered CI, and projected CS ⊆ filtered CI."""
    program = generate_program(params)
    facts = extract_facts(program)
    unfiltered = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=False, discover_call_graph=True
    ).run()
    filtered = ContextInsensitiveAnalysis(
        facts=facts, type_filtering=True, discover_call_graph=True
    ).run()
    vp_unfiltered = set(unfiltered.relation("vP").tuples())
    vp_filtered = set(filtered.relation("vP").tuples())
    assert vp_filtered <= vp_unfiltered

    cs = ContextSensitiveAnalysis(
        facts=facts, call_graph=filtered.discovered_call_graph
    ).run()
    vp_projected = set(cs.vPC.project("variable", "heap").tuples())
    assert vp_projected <= vp_filtered


@given(params_strategy)
@settings(max_examples=6, deadline=None)
def test_allocation_sites_reach_their_variable(params):
    """Base soundness: every reachable allocation flows at least to the
    variable it is assigned to."""
    program = generate_program(params)
    facts = extract_facts(program)
    result = ContextInsensitiveAnalysis(facts=facts).run()
    vp = set(result.relation("vP").tuples())
    reachable_methods = {
        facts.maps["M"][m]
        for m in result.discovered_call_graph.reachable_from(
            [facts.method_id("Main.main")]
        )
    }
    for v, h in facts.relations["vP0"]:
        method = facts.maps["V"][v].rsplit(":", 1)[0]
        if method in reachable_methods or facts.maps["V"][v] == "<global>":
            assert (v, h) in vp


@given(params_strategy)
@settings(max_examples=6, deadline=None)
def test_escape_global_always_escapes(params):
    program = generate_program(params)
    result = ThreadEscapeAnalysis(program=program).run()
    escaped_names = {
        result.facts.maps["H"][h] for h in result.escaped_heaps()
    }
    assert "<global>" in escaped_names
    if params.threads == 0:
        assert escaped_names == {"<global>"}
