"""Property-based tests for the plan IR and the optimizer pass pipeline.

Three invariants, over randomized rule shapes and fact sets:

1. lowering is *well-formed*: every register is defined before use and
   every schema obligation holds (``validate_plan`` passes) for every
   (rule, delta-variant) plan, optimized or not;
2. the compiler's liveness helper never frees a head variable;
3. the optimizer is *semantics-free*: optimized and unoptimized solves
   produce bit-identical relation BDDs on both kernel backends.
"""

import hashlib

from hypothesis import assume, given, settings, strategies as st

from repro.bdd.serialize import dump_bdd_lines
from repro.datalog import DatalogError, Solver, parse_program, validate_plan
from repro.datalog.compiler import (
    _last_use_positions,
    _order_positive_atoms,
)

HEADER = """
.domains
N 16
.relations
e (a : N0, b : N1) input
t (a : N0, b : N1, c : N2) input
p (a : N0, b : N1) output
.rules
"""

ARITIES = {"e": 2, "t": 3, "p": 2}
VARS = ("x", "y", "z", "w")


@st.composite
def rules_strategy(draw):
    """1-3 well-formed rules with head ``p`` and random positive bodies."""
    rules = []
    for _ in range(draw(st.integers(1, 3))):
        n_atoms = draw(st.integers(1, 3))
        body = []
        bound = []
        for _ in range(n_atoms):
            rel = draw(st.sampled_from(sorted(ARITIES)))
            terms = [
                draw(st.sampled_from(VARS)) for _ in range(ARITIES[rel])
            ]
            bound.extend(terms)
            body.append(f"{rel}({', '.join(terms)})")
        head_vars = (
            draw(st.sampled_from(bound)),
            draw(st.sampled_from(bound)),
        )
        rules.append(f"p({head_vars[0]}, {head_vars[1]}) :- {', '.join(body)}.")
    return "\n".join(rules)


edges_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=0, max_size=30,
)
triples_strategy = st.lists(
    st.tuples(
        st.integers(0, 15), st.integers(0, 15), st.integers(0, 15)
    ),
    min_size=0, max_size=20,
)


def _parse(rules_text):
    try:
        return parse_program(HEADER + rules_text)
    except DatalogError:
        assume(False)


@given(rules_strategy())
@settings(max_examples=80, deadline=None)
def test_lowered_plans_validate(rules_text):
    """Every compiled plan — greedy and optimized — passes validation:
    in particular every register (and so every variable binding) is
    defined before it is used."""
    prog = _parse(rules_text)
    for optimize in (False, True):
        solver = Solver(prog, optimize=optimize)
        for plan in solver.plan_unit.plans.values():
            validate_plan(prog, plan, hoisted=solver.plan_unit.hoisted)


@given(rules_strategy())
@settings(max_examples=80, deadline=None)
def test_last_use_never_frees_head_variable(rules_text):
    prog = _parse(rules_text)
    sentinel = 1 << 30
    for rule in prog.rules:
        variants = [None] + list(range(len(rule.positive_atoms)))
        for delta in variants:
            ordered = _order_positive_atoms(rule, delta)
            last = _last_use_positions(prog, rule, ordered, [])
            for var in rule.head.variables():
                assert last[var] == sentinel, (
                    f"head variable {var!r} freed at {last[var]}"
                )


def _solve_digests(prog_text, rules_text, edges, triples, backend, optimize):
    solver = Solver(
        parse_program(prog_text + rules_text),
        backend=backend,
        optimize=optimize,
    )
    solver.add_tuples("e", edges)
    solver.add_tuples("t", triples)
    solver.solve()
    out = {}
    for name in ("p",):
        lines, _ = dump_bdd_lines(
            solver.manager, [solver.relation(name).node]
        )
        out[name] = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return out


@given(rules_strategy(), edges_strategy, triples_strategy)
@settings(max_examples=25, deadline=None)
def test_optimizer_is_semantics_free(rules_text, edges, triples):
    """Optimized and unoptimized plans produce bit-identical relation
    BDDs under both kernel backends (same levels, same structure)."""
    _parse(rules_text)  # assume() away unparseable draws
    for backend in ("reference", "packed"):
        opt = _solve_digests(
            HEADER, rules_text, edges, triples, backend, True
        )
        noopt = _solve_digests(
            HEADER, rules_text, edges, triples, backend, False
        )
        assert opt == noopt
