"""Property-based tests for the Datalog-to-BDD engine: results are checked
against a reference naive Python Datalog evaluator on random edge sets."""

from hypothesis import given, settings, strategies as st

from repro.datalog import Solver, parse_program

edges_strategy = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=0,
    max_size=40,
)


def model_closure(edges):
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


TC = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


@given(edges_strategy)
@settings(max_examples=60, deadline=None)
def test_transitive_closure_matches_model(edges):
    solver = Solver(parse_program(TC))
    solver.add_tuples("edge", edges)
    solver.solve()
    assert set(solver.relation("path").tuples()) == model_closure(edges)


@given(edges_strategy)
@settings(max_examples=30, deadline=None)
def test_naive_equals_seminaive(edges):
    fast = Solver(parse_program(TC))
    fast.add_tuples("edge", edges)
    fast.solve()
    slow = Solver(parse_program(TC), naive=True)
    slow.add_tuples("edge", edges)
    slow.solve()
    assert set(fast.relation("path").tuples()) == set(
        slow.relation("path").tuples()
    )


NEG = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
node (a : N) input
path (a : N0, b : N1) output
unreach (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreach(x, y) :- node(x), node(y), !path(x, y).
"""


@given(edges_strategy)
@settings(max_examples=40, deadline=None)
def test_stratified_negation_matches_model(edges):
    nodes = sorted({n for e in edges for n in e} | {0})
    solver = Solver(parse_program(NEG))
    solver.add_tuples("edge", edges)
    solver.add_tuples("node", [(n,) for n in nodes])
    solver.solve()
    closure = model_closure(edges)
    expected = {
        (a, b) for a in nodes for b in nodes if (a, b) not in closure
    }
    assert set(solver.relation("unreach").tuples()) == expected


@given(edges_strategy, st.integers(0, 15))
@settings(max_examples=40, deadline=None)
def test_constant_selection_matches_model(edges, pivot):
    text = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
from_pivot (b : N) output
.rules
from_pivot(y) :- edge(%d, y).
""" % pivot
    solver = Solver(parse_program(text))
    solver.add_tuples("edge", edges)
    solver.solve()
    expected = {(b,) for a, b in edges if a == pivot}
    assert set(solver.relation("from_pivot").tuples()) == expected


@given(edges_strategy)
@settings(max_examples=40, deadline=None)
def test_inequality_filter_matches_model(edges):
    text = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
nonloop (a : N0, b : N1) output
.rules
nonloop(x, y) :- edge(x, y), x != y.
"""
    solver = Solver(parse_program(text))
    solver.add_tuples("edge", edges)
    solver.solve()
    assert set(solver.relation("nonloop").tuples()) == {
        (a, b) for a, b in edges if a != b
    }


@given(edges_strategy)
@settings(max_examples=30, deadline=None)
def test_count_matches_enumeration(edges):
    solver = Solver(parse_program(TC))
    solver.add_tuples("edge", edges)
    solver.solve()
    rel = solver.relation("path")
    assert rel.count() == len(set(rel.tuples()))
