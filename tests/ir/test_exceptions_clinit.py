"""Tests for exception modeling, null assignments, and class-initializer
entry points."""

import pytest

from repro.analysis import (
    ContextInsensitiveAnalysis,
    ContextSensitiveAnalysis,
)
from repro.ir import extract_facts, parse_program
from repro.ir.facts import THROWN
from repro.ir.program import NullAssign, Throw


THROWING = """
class AppError { }
class ParseError extends AppError { }

class Parser {
    static method parse(o : Object) returns Object {
        if (*) {
            e = new ParseError;
            throw e;
        }
        return o;
    }
}

class Main {
    static method main() {
        o = new Object;
        r = Parser.parse(o);
    }
}
"""


class TestExceptions:
    def test_throw_parsed(self):
        prog = parse_program(THROWING, include_library=False)
        stmts = list(prog.cls("Parser").methods["parse"].statements())
        assert any(isinstance(s, Throw) for s in stmts)

    def test_thrown_channel_in_facts(self):
        facts = extract_facts(parse_program(THROWING, include_library=False))
        assert facts.relations["Mthr"]
        assert any(THROWN in name for name in facts.maps["V"])

    def test_no_channel_without_throws(self):
        facts = extract_facts(
            parse_program(
                "class Main { static method main() { o = new Object; } }",
                include_library=False,
            )
        )
        assert facts.relations["Mthr"] == []
        assert not any(THROWN in name for name in facts.maps["V"])

    def test_exception_propagates_to_caller_ci(self):
        prog = parse_program(THROWING, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        got = result.points_to("Main.main", THROWN)
        assert got == {"Parser.parse@0:new ParseError"}

    def test_exception_propagates_to_caller_cs(self):
        prog = parse_program(THROWING, include_library=False)
        result = ContextSensitiveAnalysis(program=prog).run()
        got = result.points_to("Main.main", THROWN)
        assert got == {"Parser.parse@0:new ParseError"}

    def test_exception_contexts_separate(self):
        source = """
class Err { }
class Lib {
    static method may(tag : Object) returns Object {
        if (*) {
            e = new Err;
            throw e;
        }
        return tag;
    }
}
class Main {
    static method a() returns Object {
        o = new Object;
        r = Lib.may(o);
        return r;
    }
    static method main() {
        x = Main.a();
        o2 = new Object;
        y = Lib.may(o2);
    }
}
"""
        prog = parse_program(source, include_library=False)
        cs = ContextSensitiveAnalysis(program=prog).run()
        # Both main and a receive the error through their channels.
        assert cs.points_to("Main.main", THROWN) == {"Lib.may@0:new Err"}
        assert cs.points_to("Main.a", THROWN) == {"Lib.may@0:new Err"}


class TestNullAssign:
    def test_parsed(self):
        prog = parse_program(
            """
class Main {
    static method main() {
        o = new Object;
        o = null;
    }
}
""",
            include_library=False,
        )
        stmts = prog.cls("Main").methods["main"].body
        assert isinstance(stmts[1], NullAssign)

    def test_null_is_ignored_by_analysis(self):
        prog = parse_program(
            """
class Main {
    static method main() {
        o = new Object;
        o = null;
        p = o;
    }
}
""",
            include_library=False,
        )
        result = ContextInsensitiveAnalysis(program=prog).run()
        # Null contributes nothing; p still sees the allocation.
        assert result.points_to("Main.main", "p") == {"Main.main@0:new Object"}


CLINIT = """
class Config {
    static field instance : Config;
    static method clinit() {
        c = new Config;
        Config.instance = c;
    }
}
class Main {
    static method main() {
        got = Config.instance;
    }
}
"""


class TestClassInitializers:
    def test_entry_methods_include_clinit(self):
        prog = parse_program(CLINIT, include_library=False)
        names = [m.qualified for m in prog.entry_methods()]
        assert names[0] == "Main.main"
        assert "Config.clinit" in names

    def test_clinit_effects_visible(self):
        """Without treating clinit as an entry, Config.instance would be
        empty; with it, main sees the initializer's allocation."""
        prog = parse_program(CLINIT, include_library=False)
        result = ContextInsensitiveAnalysis(program=prog).run()
        assert result.points_to("Main.main", "got") == {
            "Config.clinit@0:new Config"
        }

    def test_clinit_context_sensitive(self):
        prog = parse_program(CLINIT, include_library=False)
        result = ContextSensitiveAnalysis(program=prog).run()
        assert result.points_to("Main.main", "got") == {
            "Config.clinit@0:new Config"
        }
        assert result.num_contexts("Config.clinit") == 1
