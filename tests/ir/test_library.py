"""Tests analyzing programs against the modeled class library."""

import pytest

from repro.analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis
from repro.ir import extract_facts, parse_program


def analyze_ci(source):
    return ContextInsensitiveAnalysis(program=parse_program(source)).run()


class TestContainers:
    def test_arraylist_roundtrip(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        list = new ArrayList;
        o = new Object;
        list.add(o);
        got = list.get();
    }
}
"""
        )
        assert "Main.main@1:new Object" in result.points_to("Main.main", "got")

    def test_two_lists_conflated_ci_separated_cs(self):
        source = """
class Main {
    static method main() {
        l1 = new ArrayList;
        l2 = new ArrayList;
        a = new Object;
        b = new Object;
        l1.add(a);
        l2.add(b);
        x = l1.get();
        y = l2.get();
    }
}
"""
        prog = parse_program(source)
        facts = extract_facts(prog)
        ci = ContextInsensitiveAnalysis(facts=facts).run()
        # CI: the shared ArrayList.add/get conflate both lists' contents.
        assert len(ci.points_to("Main.main", "x")) == 2
        cs = ContextSensitiveAnalysis(
            facts=facts, call_graph=ci.discovered_call_graph
        ).run()
        # CS: each list's element stays separate (field-sensitivity plus
        # per-context `this` binding).
        assert cs.points_to("Main.main", "x") == {"Main.main@2:new Object"}
        assert cs.points_to("Main.main", "y") == {"Main.main@3:new Object"}

    def test_linked_list_push_pop(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        list = new LinkedList;
        o = new Object;
        list.push(o);
        got = list.pop();
    }
}
"""
        )
        assert "Main.main@1:new Object" in result.points_to("Main.main", "got")

    def test_stack_delegates_to_linked_list(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        s = new Stack;
        backing = new LinkedList;
        s.items = backing;
        o = new Object;
        s.push(o);
        got = s.pop();
    }
}
"""
        )
        assert "Main.main@3:new Object" in result.points_to("Main.main", "got")

    def test_hashmap(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        m = new HashMap;
        k = new Object;
        v = new Object;
        m.put(k, v);
        got = m.get(k);
    }
}
"""
        )
        assert "Main.main@2:new Object" in result.points_to("Main.main", "got")

    def test_iterator_reads_backing_list(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        list = new ArrayList;
        o = new Object;
        list.add(o);
        it = list.iterator();
        got = it.next();
    }
}
"""
        )
        assert "Main.main@1:new Object" in result.points_to("Main.main", "got")


class TestStringsAndJCE:
    def test_string_methods_return_strings(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        s = new String;
        t = s.concat(s);
        u = t.substring();
        i = u.intern();
    }
}
"""
        )
        for var in ("t", "u", "i"):
            got = result.points_to("Main.main", var)
            assert got, f"{var} empty"
            # Everything a String method returns is (transitively) a String.
            assert all("String" in h or "new String" in h for h in got)

    def test_stringbuilder_fluent_this(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        sb = new StringBuilder;
        o = new Object;
        sb2 = sb.append(o);
        s = sb2.build();
    }
}
"""
        )
        assert result.points_to("Main.main", "sb2") == {
            "Main.main@0:new StringBuilder"
        }

    def test_secret_key_pipeline(self):
        result = analyze_ci(
            """
class Main {
    static method main() {
        chars = new CharArray;
        spec = new PBEKeySpec;
        spec.init(chars);
        factory = new SecretKeyFactory;
        key = factory.generateSecret(spec);
        cipher = new Cipher;
        cipher.initKey(key);
    }
}
"""
        )
        got = result.points_to("Main.main", "key")
        assert len(got) == 1 and "new SecretKey" in next(iter(got))

    def test_exception_classes_in_hierarchy(self):
        prog = parse_program(
            "class Main { static method main() { e = new RuntimeException; } }"
        )
        facts = extract_facts(prog)
        assert facts.hierarchy.is_assignable("Exception", "RuntimeException")
