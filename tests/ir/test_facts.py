"""Tests for fact extraction (the Joeq-replacement layer)."""

import pytest

from repro.ir import GLOBAL, NULL_NAME, extract_facts, parse_program


def facts_for(source, **kwargs):
    return extract_facts(parse_program(source, include_library=False), **kwargs)


BASIC = """
class Box {
    field item : Object;
}
class Main {
    static method main() {
        b = new Box;
        o = new Object;
        b.item = o;
        x = b.item;
    }
}
"""


class TestDomains:
    def test_h_is_prefix_of_i(self):
        facts = facts_for(BASIC)
        h_names = facts.maps["H"]
        i_names = facts.maps["I"]
        assert i_names[: len(h_names)] == h_names

    def test_global_in_both_h_and_i(self):
        facts = facts_for(BASIC)
        assert GLOBAL in facts.maps["H"]
        assert facts.maps["I"][facts.global_site] == GLOBAL

    def test_sizes_cover_maps(self):
        facts = facts_for(BASIC)
        for dom in "VHFTIMN":
            assert facts.sizes[dom] >= 1
        assert facts.sizes["Z"] >= 1

    def test_type_domain_contains_all_classes(self):
        facts = facts_for(BASIC)
        for cls in ("Object", "Thread", "Box", "Main"):
            assert cls in facts.maps["T"]

    def test_null_name_present(self):
        facts = facts_for(BASIC)
        assert NULL_NAME in facts.maps["N"]


class TestCoreRelations:
    def test_vp0_from_allocations(self):
        facts = facts_for(BASIC)
        b = facts.var_id("Main.main", "b")
        o = facts.var_id("Main.main", "o")
        heaps = {v: h for v, h in facts.relations["vP0"]}
        assert "new Box" in facts.name_of("H", heaps[b])
        assert "new Object" in facts.name_of("H", heaps[o])

    def test_store_load(self):
        facts = facts_for(BASIC)
        b = facts.var_id("Main.main", "b")
        o = facts.var_id("Main.main", "o")
        x = facts.var_id("Main.main", "x")
        item = facts.id_of("F", "Box.item")
        assert (b, item, o) in facts.relations["store"]
        assert (b, item, x) in facts.relations["load"]

    def test_ht_types(self):
        facts = facts_for(BASIC)
        box_t = facts.id_of("T", "Box")
        assert facts.heap_ids_of_class("Box")
        for h in facts.heap_ids_of_class("Box"):
            assert (h, box_t) in facts.relations["hT"]

    def test_at_reflexive_and_transitive(self):
        facts = facts_for(BASIC)
        t_obj = facts.id_of("T", "Object")
        t_box = facts.id_of("T", "Box")
        at = set(facts.relations["aT"])
        assert (t_box, t_box) in at
        assert (t_obj, t_box) in at
        assert (t_box, t_obj) not in at

    def test_field_resolution_through_superclass(self):
        facts = facts_for(
            """
class Base {
    field f : Object;
}
class Derived extends Base {
}
class Main {
    static method main() {
        d = new Derived;
        o = new Object;
        d.f = o;
    }
}
"""
        )
        assert "Base.f" in facts.maps["F"]

    def test_statics_through_global(self):
        facts = facts_for(
            """
class Main {
    static field cache : Object;
    static method main() {
        o = new Object;
        Main.cache = o;
        x = Main.cache;
    }
}
"""
        )
        g = facts.id_of("V", GLOBAL)
        f = facts.id_of("F", "Main.cache")
        o = facts.var_id("Main.main", "o")
        x = facts.var_id("Main.main", "x")
        assert (g, f, o) in facts.relations["store"]
        assert (g, f, x) in facts.relations["load"]
        # The global variable points to the global heap object initially.
        gh = facts.id_of("H", GLOBAL)
        assert (g, gh) in facts.relations["vP0"]


CALLS = """
class A {
    method id(x : Object) returns Object {
        return x;
    }
}
class B extends A {
    method id(x : Object) returns Object {
        y = new Object;
        return y;
    }
}
class Main {
    static method mk() returns A {
        a = new B;
        return a;
    }
    static method main() {
        var a : A;
        a = Main.mk();
        o = new Object;
        r = a.id(o);
    }
}
"""


class TestCallRelations:
    def test_actual_formal(self):
        facts = facts_for(CALLS)
        # Virtual call a.id(o): receiver at z=0, o at z=1.
        a = facts.var_id("Main.main", "a")
        o = facts.var_id("Main.main", "o")
        actuals = facts.relations["actual"]
        sites = {i for i, z, v in actuals if z == 0 and v == a}
        assert len(sites) == 1
        site = sites.pop()
        assert (site, 1, o) in actuals
        # Formals of A.id: this at 0, x at 1.
        m = facts.method_id("A.id")
        this_v = facts.var_id("A.id", "this")
        x_v = facts.var_id("A.id", "x")
        formals = facts.relations["formal"]
        assert (m, 0, this_v) in formals
        assert (m, 1, x_v) in formals

    def test_static_call_ie0_and_null_name(self):
        facts = facts_for(CALLS)
        mk = facts.method_id("Main.mk")
        ie0 = facts.relations["IE0"]
        assert any(m == mk for _, m in ie0)
        null_n = facts.id_of("N", NULL_NAME)
        static_sites = {i for i, m in ie0}
        for m_id, i, n in facts.relations["mI"]:
            if i in static_sites:
                assert n == null_n

    def test_virtual_site_has_name(self):
        facts = facts_for(CALLS)
        id_n = facts.id_of("N", "id")
        assert any(n == id_n for _, _, n in facts.relations["mI"])

    def test_returns(self):
        facts = facts_for(CALLS)
        m = facts.method_id("A.id")
        x = facts.var_id("A.id", "x")
        assert (m, x) in facts.relations["Mret"]
        r = facts.var_id("Main.main", "r")
        assert any(v == r for _, v in facts.relations["Iret"])

    def test_cha_includes_override(self):
        facts = facts_for(CALLS)
        cha = facts.relations["cha"]
        t_a, t_b = facts.id_of("T", "A"), facts.id_of("T", "B")
        n_id = facts.id_of("N", "id")
        m_a, m_b = facts.method_id("A.id"), facts.method_id("B.id")
        assert (t_a, n_id, m_a) in cha
        assert (t_b, n_id, m_b) in cha

    def test_site_method_map(self):
        facts = facts_for(CALLS)
        main_id = facts.method_id("Main.main")
        # Two invocation sites in main (the static and the virtual call).
        sites = [i for i, m in facts.site_method.items() if m == main_id]
        # main also has allocation sites (new Object).
        assert len(sites) >= 3


class TestFactoring:
    def test_copy_chain_factored(self):
        facts = facts_for(
            """
class Main {
    static method main() {
        a = new Object;
        b = a;
        c = b;
    }
}
"""
        )
        a = facts.var_id("Main.main", "a")
        assert facts.var_id("Main.main", "b") == a
        assert facts.var_id("Main.main", "c") == a
        assert facts.relations["assign0"] == []

    def test_multi_def_not_factored(self):
        facts = facts_for(
            """
class Main {
    static method main() {
        a = new Object;
        b = new Object;
        b = a;
    }
}
"""
        )
        a = facts.var_id("Main.main", "a")
        b = facts.var_id("Main.main", "b")
        assert a != b
        assert (b, a) in facts.relations["assign0"]

    def test_factoring_disabled(self):
        facts = facts_for(
            """
class Main {
    static method main() {
        a = new Object;
        b = a;
    }
}
""",
            factor_locals=False,
        )
        a = facts.var_id("Main.main", "a")
        b = facts.var_id("Main.main", "b")
        assert a != b
        assert (b, a) in facts.relations["assign0"]

    def test_different_types_not_factored(self):
        facts = facts_for(
            """
class Box { }
class Main {
    static method main() {
        var a : Box;
        var b : Object;
        a = new Box;
        b = a;
    }
}
"""
        )
        assert facts.var_id("Main.main", "a") != facts.var_id("Main.main", "b")

    def test_cast_edge_kept_with_type(self):
        facts = facts_for(
            """
class Box { }
class Main {
    static method main() {
        var o : Object;
        o = new Box;
        b = (Box) o;
    }
}
"""
        )
        o = facts.var_id("Main.main", "o")
        b = facts.var_id("Main.main", "b")
        assert (b, o) in facts.relations["assign0"]
        box_t = facts.id_of("T", "Box")
        assert (b, box_t) in facts.relations["vT"]


class TestMiscRelations:
    def test_sync(self):
        facts = facts_for(
            """
class Main {
    static method main() {
        o = new Object;
        sync o;
    }
}
"""
        )
        o = facts.var_id("Main.main", "o")
        assert (o,) in facts.relations["sync"]

    def test_mv_covers_locals(self):
        facts = facts_for(BASIC)
        m = facts.method_id("Main.main")
        vars_of_main = {v for mm, v in facts.relations["mV"] if mm == m}
        for name in ("b", "o", "x"):
            assert facts.var_id("Main.main", name) in vars_of_main

    def test_alloc_sites_per_method(self):
        facts = facts_for(BASIC)
        m = facts.method_id("Main.main")
        assert len(facts.alloc_sites[m]) == 2

    def test_thread_start_site_is_virtual_run_dispatch(self):
        facts = facts_for(
            """
class Worker extends Thread {
    method run() {
        o = new Object;
    }
}
class Main {
    static method main() {
        w = new Worker;
        w.start();
    }
}
"""
        )
        t_w = facts.id_of("T", "Worker")
        n_start = facts.id_of("N", "start")
        m_run = facts.method_id("Worker.run")
        assert (t_w, n_start, m_run) in facts.relations["cha"]
