"""Tests for the mini-Java parser and program model."""

import pytest

from repro.ir import (
    Cast,
    Copy,
    If,
    Invoke,
    IRError,
    Load,
    New,
    ParseError,
    Return,
    StaticLoad,
    StaticStore,
    Store,
    Sync,
    While,
    parse_classes,
    parse_program,
)


SIMPLE = """
class Main {
    static method main() {
        o = new Object;
        p = o;
    }
}
"""


class TestParsing:
    def test_simple_program(self):
        prog = parse_program(SIMPLE, include_library=False)
        main = prog.cls("Main").methods["main"]
        assert main.is_static
        assert main.body == [New("o", "Object"), Copy("p", "o")]

    def test_fields_and_types(self):
        prog = parse_program(
            """
class Box {
    field item : Object;
    static field shared : Box;
}
class Main {
    static method main() {
        b = new Box;
    }
}
""",
            include_library=False,
        )
        box = prog.cls("Box")
        assert box.fields["item"].type == "Object"
        assert box.fields["shared"].is_static

    def test_inheritance_and_interfaces(self):
        prog = parse_program(
            """
interface Shape {
    method area() returns Object;
}
class Circle implements Shape {
    method area() returns Object {
        r = new Object;
        return r;
    }
}
class Ellipse extends Circle {
}
class Main {
    static method main() {
        c = new Ellipse;
    }
}
""",
            include_library=False,
        )
        assert prog.cls("Ellipse").superclass == "Circle"
        assert prog.cls("Circle").interfaces == ["Shape"]
        assert prog.cls("Shape").is_interface

    def test_statement_forms(self):
        prog = parse_program(
            """
class A {
    field f : Object;
    method id(x : Object) returns Object {
        return x;
    }
    static method mk() returns A {
        a = new A;
        return a;
    }
}
class Main {
    static field cache : Object;
    static method main() {
        var a : A;
        a = A.mk();
        o = new Object;
        a.f = o;
        b = a.f;
        c = a.id(b);
        d = (A) c;
        Main.cache = d;
        e = Main.cache;
        sync a;
    }
}
""",
            include_library=False,
        )
        body = prog.cls("Main").methods["main"].body
        kinds = [type(s).__name__ for s in body]
        assert kinds == [
            "Invoke", "New", "Store", "Load", "Invoke", "Cast",
            "StaticStore", "StaticLoad", "Sync",
        ]
        call = body[0]
        assert call.static_cls == "A" and call.dst == "a"
        virt = body[4]
        assert virt.base == "a" and virt.args == ("b",) and virt.dst == "c"

    def test_control_flow(self):
        prog = parse_program(
            """
class Main {
    static method main() {
        if (*) {
            a = new Object;
        } else {
            b = new Object;
        }
        while (*) {
            c = new Object;
        }
    }
}
""",
            include_library=False,
        )
        body = prog.cls("Main").methods["main"].body
        assert isinstance(body[0], If)
        assert isinstance(body[0].then[0], New)
        assert isinstance(body[0].els[0], New)
        assert isinstance(body[1], While)

    def test_this_receiver(self):
        prog = parse_program(
            """
class A {
    field f : Object;
    method m() {
        x = this.f;
        this.f = x;
        this.m();
    }
}
class Main {
    static method main() {
        a = new A;
        a.m();
    }
}
""",
            include_library=False,
        )
        body = prog.cls("A").methods["m"].body
        assert body[0] == Load("x", "this", "f")
        assert body[1] == Store("this", "f", "x")
        assert body[2].base == "this"

    def test_expression_statement_call(self):
        prog = parse_program(
            """
class Main {
    static method helper(x : Object) {
    }
    static method main() {
        o = new Object;
        Main.helper(o);
    }
}
""",
            include_library=False,
        )
        call = prog.cls("Main").methods["main"].body[1]
        assert isinstance(call, Invoke)
        assert call.dst is None and call.static_cls == "Main"

    def test_library_linked_by_default(self):
        prog = parse_program(SIMPLE)
        assert "String" in prog.classes
        assert "PBEKeySpec" in prog.classes
        assert "HashMap" in prog.classes

    def test_comments(self):
        prog = parse_program(
            """
// a line comment
class Main {
    /* block
       comment */
    static method main() {
        o = new Object;  // trailing
    }
}
""",
            include_library=False,
        )
        assert len(prog.cls("Main").methods["main"].body) == 1

    def test_syntax_error_reports_line(self):
        with pytest.raises(ParseError) as exc:
            parse_classes("class Main {\n    field x\n}")
        assert "line" in str(exc.value)

    def test_missing_main_rejected(self):
        with pytest.raises(IRError):
            parse_program("class A { }", include_library=False)

    def test_instance_main_rejected(self):
        with pytest.raises(IRError):
            parse_program(
                "class Main { method main() { } }", include_library=False
            )


class TestValidation:
    def test_unknown_superclass(self):
        with pytest.raises(IRError):
            parse_program(
                """
class A extends Nope { }
class Main { static method main() { } }
""",
                include_library=False,
            )

    def test_new_interface_rejected(self):
        with pytest.raises(IRError):
            parse_program(
                """
interface I { }
class Main {
    static method main() {
        x = new I;
    }
}
""",
                include_library=False,
            )

    def test_unknown_static_target(self):
        with pytest.raises(IRError):
            parse_program(
                """
class Main {
    static method main() {
        x = Main.nosuch();
    }
}
""",
                include_library=False,
            )

    def test_inheritance_cycle(self):
        from repro.ir import ClassDecl, Program

        prog = Program()
        prog.add_class(ClassDecl("A", superclass="B"))
        prog.add_class(ClassDecl("B", superclass="A"))
        with pytest.raises(IRError):
            prog.validate()

    def test_stats(self):
        prog = parse_program(SIMPLE, include_library=False)
        stats = prog.stats()
        assert stats["classes"] == 3  # Object, Thread, Main
        assert stats["allocs"] == 1
        assert stats["statements"] == 2


class TestHierarchy:
    def make(self):
        return parse_program(
            """
interface Shape {
    method area() returns Object;
}
class Circle implements Shape {
    method area() returns Object {
        r = new Object;
        return r;
    }
}
class Ellipse extends Circle {
    method area() returns Object {
        r = new Object;
        return r;
    }
}
class Square implements Shape {
    method area() returns Object {
        r = new Object;
        return r;
    }
}
class Worker extends Thread {
    method run() {
        o = new Object;
    }
}
class Main {
    static method main() {
        w = new Worker;
        w.start();
    }
}
""",
            include_library=False,
        )

    def test_assignability(self):
        from repro.ir import TypeHierarchy

        h = TypeHierarchy(self.make())
        assert h.is_assignable("Object", "Circle")
        assert h.is_assignable("Shape", "Circle")
        assert h.is_assignable("Shape", "Ellipse")
        assert h.is_assignable("Circle", "Ellipse")
        assert not h.is_assignable("Ellipse", "Circle")
        assert not h.is_assignable("Square", "Circle")

    def test_dispatch_override(self):
        from repro.ir import TypeHierarchy

        h = TypeHierarchy(self.make())
        cha = {(t, n): m.qualified for t, n, m in h.dispatch_tuples()}
        assert cha[("Circle", "area")] == "Circle.area"
        assert cha[("Ellipse", "area")] == "Ellipse.area"
        assert cha[("Square", "area")] == "Square.area"

    def test_thread_start_dispatches_to_run(self):
        from repro.ir import TypeHierarchy

        h = TypeHierarchy(self.make())
        cha = {(t, n): m.qualified for t, n, m in h.dispatch_tuples()}
        assert cha[("Worker", "start")] == "Worker.run"

    def test_thread_detection(self):
        from repro.ir import TypeHierarchy

        h = TypeHierarchy(self.make())
        assert h.is_thread_type("Worker")
        assert not h.is_thread_type("Circle")

    def test_resolve_inherited(self):
        from repro.ir import TypeHierarchy

        prog = self.make()
        h = TypeHierarchy(prog)
        # Ellipse inherits nothing extra; Circle.area resolves on Ellipse
        # only through the override.
        assert h.resolve("Ellipse", "area").qualified == "Ellipse.area"
