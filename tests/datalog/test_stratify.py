"""Tests for predicate stratification and rule compilation internals."""

import pytest

from repro.datalog import DatalogError, parse_program, stratify
from repro.datalog.compiler import compile_rule, instance_requirements


def strata_of(text):
    prog = parse_program(text)
    return prog, stratify(prog)


class TestStratify:
    def test_single_stratum_recursion(self):
        prog, strata = strata_of(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
.rules
p(x, y) :- e(x, y).
p(x, z) :- p(x, y), e(y, z).
"""
        )
        p_stratum = next(s for s in strata if "p" in s.predicates)
        assert p_stratum.is_recursive()
        assert len(p_stratum.recursive_rules) == 1

    def test_negation_forces_later_stratum(self):
        prog, strata = strata_of(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
q (a : N0, b : N1)
.rules
p(x, y) :- e(x, y).
p(x, z) :- p(x, y), e(y, z).
q(x, y) :- e(x, y), !p(x, y).
"""
        )
        p_idx = next(s.index for s in strata if "p" in s.predicates)
        q_idx = next(s.index for s in strata if "q" in s.predicates)
        assert p_idx < q_idx

    def test_dependencies_evaluated_first(self):
        prog, strata = strata_of(
            """
.domains
N 8
.relations
a (x : N)
b (x : N)
c (x : N)
.rules
b(x) :- a(x).
c(x) :- b(x).
"""
        )
        order = {p: s.index for s in strata for p in s.predicates}
        assert order["a"] <= order["b"] <= order["c"]

    def test_mutual_recursion_single_stratum(self):
        prog, strata = strata_of(
            """
.domains
N 8
.relations
n (a : N0, b : N1)
even (x : N)
odd (x : N)
.rules
odd(y) :- even(x), n(x, y).
even(y) :- odd(x), n(x, y).
"""
        )
        stratum = next(s for s in strata if "even" in s.predicates)
        assert "odd" in stratum.predicates

    def test_unstratified_detected(self):
        prog = parse_program(
            """
.domains
N 8
.relations
p (x : N)
q (x : N)
.rules
p(x) :- q(x).
q(x) :- !p(x).
"""
        )
        with pytest.raises(DatalogError):
            stratify(prog)

    def test_negative_self_loop_detected(self):
        prog = parse_program(
            """
.domains
N 8
.relations
p (x : N)
a (x : N)
.rules
p(x) :- a(x), !p(x).
"""
        )
        with pytest.raises(DatalogError):
            stratify(prog)


class TestCompiler:
    def test_instance_requirements_cover_rule_variables(self):
        prog = parse_program(
            """
.domains
V 8
H 8
.relations
assign (d : V0, s : V1)
vP (v : V, h : H)
.rules
vP(v1, h) :- assign(v1, v2), vP(v2, h).
"""
        )
        reqs = instance_requirements(prog)
        assert reqs["V"] >= 2
        assert reqs["H"] >= 1

    def test_three_variable_rule_needs_three_instances(self):
        prog = parse_program(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
.rules
p(x, z) :- p(x, y), e(y, z).
"""
        )
        reqs = instance_requirements(prog)
        assert reqs["N"] >= 3

    def test_plan_projects_dead_variables_at_join(self):
        prog = parse_program(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
.rules
p(x, z) :- p(x, y), e(y, z).
"""
        )
        plan = compile_rule(prog, prog.rules[0], None)
        # y is dead after the second atom: the join must project it.
        from repro.datalog.plan import RelProd

        joins = [op for op in plan.ops if isinstance(op, RelProd)]
        assert len(joins) == 1
        assert joins[0].refs, "join variable y should be projected"

    def test_delta_variant_marks_delta_atom(self):
        prog = parse_program(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
.rules
p(x, z) :- p(x, y), e(y, z).
"""
        )
        from repro.datalog.plan import Load

        plan = compile_rule(prog, prog.rules[0], 0)  # p is positive atom 0
        loads = [op for op in plan.ops if isinstance(op, Load)]
        assert [op.relation for op in loads] == ["p", "e"]
        assert loads[0].use_delta
        assert not loads[1].use_delta

    def test_delta_atom_ordered_first(self):
        prog = parse_program(
            """
.domains
N 8
.relations
e (a : N0, b : N1)
p (a : N0, b : N1)
.rules
p(x, z) :- e(x, y), p(y, z).
"""
        )
        from repro.datalog.plan import Load

        plan = compile_rule(prog, prog.rules[0], 1)  # delta on p (index 1)
        loads = [op for op in plan.ops if isinstance(op, Load)]
        assert loads[0].relation == "p"
        assert loads[0].use_delta

    def test_phys_refs_enumerates_touched_domains(self):
        prog = parse_program(
            """
.domains
V 8
H 8
.relations
assign (d : V0, s : V1)
vP (v : V, h : H)
.rules
vP(v1, h) :- assign(v1, v2), vP(v2, h).
"""
        )
        plan = compile_rule(prog, prog.rules[0], None)
        refs = plan.phys_refs()
        # H0 passes through untouched (no rename/projection), so only the
        # V instances appear among the explicitly manipulated domains.
        assert ("V", 0) in refs and ("V", 1) in refs
