"""Magic-sets rewriting: goal-directed answers must equal the exhaustive
solve restricted to the goal bindings (the magic-sets theorem, checked)."""

import pytest

from repro.datalog import DatalogError, Solver, parse_program
from repro.datalog.magic import magic_rewrite

TC = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""

# Two disconnected components: querying inside one must not derive the other.
EDGES = [(0, 1), (1, 2), (2, 3), (10, 11), (11, 12), (12, 13), (13, 10)]


def full_solve(text, facts, **kwargs):
    solver = Solver(parse_program(text), **kwargs)
    for name, tuples in facts.items():
        solver.add_tuples(name, tuples)
    solver.solve()
    return solver


def demand_solve(text, goals, facts, seeds, **kwargs):
    mp = magic_rewrite(parse_program(text), goals, **kwargs)
    solver = Solver(mp.program)
    for name, tuples in facts.items():
        solver.add_tuples(name, tuples)
    for (pred, ad), tuples in seeds.items():
        info = mp.goal(pred, ad)
        assert info.magic is not None
        solver.add_tuples(info.magic, tuples)
    solver.solve()
    return mp, solver


class TestTransitiveClosure:
    def test_bound_first_matches_exhaustive(self):
        full = full_solve(TC, {"edge": EDGES})
        want = {t[1:] for t in full.relation("path").tuples() if t[0] == 0}
        mp, solver = demand_solve(
            TC, [("path", "bf")], {"edge": EDGES}, {("path", "bf"): [(0,)]}
        )
        answer = solver.relation(mp.goal("path", "bf").answer)
        assert set(answer.select(src=0).tuples()) == want

    def test_goal_directed_skips_unrelated_component(self):
        mp, solver = demand_solve(
            TC, [("path", "bf")], {"edge": EDGES}, {("path", "bf"): [(0,)]}
        )
        derived = set(solver.relation(mp.goal("path", "bf").answer).tuples())
        # Nothing from the {10..13} cycle was computed.
        assert derived and all(src < 10 for src, _ in derived)

    def test_multiple_seeds_accumulate(self):
        full = full_solve(TC, {"edge": EDGES})
        mp, solver = demand_solve(
            TC,
            [("path", "bf")],
            {"edge": EDGES},
            {("path", "bf"): [(0,), (11,)]},
        )
        answer = solver.relation(mp.goal("path", "bf").answer)
        for src in (0, 11):
            want = {t[1:] for t in full.relation("path").tuples() if t[0] == src}
            assert set(answer.select(src=src).tuples()) == want

    def test_solve_demand_incremental_seeding(self):
        full = full_solve(TC, {"edge": EDGES})
        mp = magic_rewrite(parse_program(TC), [("path", "bf")])
        info = mp.goal("path", "bf")
        solver = Solver(mp.program)
        solver.add_tuples("edge", EDGES)
        solver.solve_demand({info.magic: [(0,)]})
        answer = solver.relation(info.answer)
        assert set(answer.select(src=0).tuples()) == {
            t[1:] for t in full.relation("path").tuples() if t[0] == 0
        }
        before = solver.stats.rule_applications
        # Second query over the other component: pushed as a delta.
        solver.solve_demand({info.magic: [(10,)]})
        assert set(answer.select(src=10).tuples()) == {
            t[1:] for t in full.relation("path").tuples() if t[0] == 10
        }
        # Re-seeding an already-answered goal is a no-op.
        applications = solver.stats.rule_applications
        solver.solve_demand({info.magic: [(0,), (10,)]})
        assert solver.stats.rule_applications == applications
        assert applications > before


SG = """
.domains
N 64
.relations
parent (child : N0, parent : N1) input
sg (a : N0, b : N1) output
.rules
sg(x, x) :- parent(x, _).
sg(x, x) :- parent(_, x).
sg(x, y) :- parent(x, px), sg(px, py), parent(y, py).
"""


class TestSameGeneration:
    @pytest.mark.parametrize("backend", ["reference", "packed"])
    def test_matches_exhaustive(self, backend):
        parents = [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (7, 6), (8, 6)]
        full = full_solve(SG, {"parent": parents}, backend=backend)
        mp, solver = demand_solve(
            SG,
            [("sg", "bf")],
            {"parent": parents},
            {("sg", "bf"): [(3,)]},
        )
        answer = solver.relation(mp.goal("sg", "bf").answer)
        want = {t[1:] for t in full.relation("sg").tuples() if t[0] == 3}
        assert set(answer.select(a=3).tuples()) == want
        # 7/8's family tree is disjoint from 3's: never touched.
        derived = set(answer.tuples())
        assert all(a <= 5 and b <= 5 for a, b in derived)


NEGATION = """
.domains
N 16
.relations
node (n : N0) input
edge (src : N0, dst : N1) input
path (src : N0, dst : N1)
unreach (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreach(x, y) :- node(x), node(y), !path(x, y).
"""


class TestStratifiedNegation:
    def test_negated_predicate_computed_in_full(self):
        nodes = [(i,) for i in range(6)]
        edges = [(0, 1), (1, 2), (4, 5)]
        full = full_solve(NEGATION, {"node": nodes, "edge": edges})
        mp, solver = demand_solve(
            NEGATION,
            [("unreach", "bf")],
            {"node": nodes, "edge": edges},
            {("unreach", "bf"): [(0,)]},
        )
        answer = solver.relation(mp.goal("unreach", "bf").answer)
        want = {t[1:] for t in full.relation("unreach").tuples() if t[0] == 0}
        assert set(answer.select(src=0).tuples()) == want
        # The negated path relation keeps its original name and is full.
        assert set(solver.relation("path").tuples()) == set(
            full.relation("path").tuples()
        )

    def test_rewrite_stays_stratified(self):
        mp = magic_rewrite(parse_program(NEGATION), [("unreach", "bb")])
        # stratify() ran inside magic_rewrite; sanity-check the shape too.
        assert any(r.head.relation == "path" for r in mp.program.rules)


class TestAdornmentControl:
    def test_widening_cap_still_correct(self):
        full = full_solve(SG, {"parent": [(1, 0), (2, 0), (3, 1), (4, 2)]})
        mp = magic_rewrite(
            parse_program(SG), [("sg", "bf"), ("sg", "bb")], max_adornments=1
        )
        # "bb" widened onto the existing "bf" variant.
        info_bf = mp.goal("sg", "bf")
        info_bb = mp.goal("sg", "bb")
        assert info_bb.answer == info_bf.answer
        assert info_bb.bound == (0,)
        solver = Solver(mp.program)
        solver.add_tuples("parent", [(1, 0), (2, 0), (3, 1), (4, 2)])
        solver.add_tuples(info_bb.magic, [(3,)])
        solver.solve()
        want = (3, 4) in set(full.relation("sg").tuples())
        got = not solver.relation(info_bb.answer).select(a=3, b=4).is_empty()
        assert got == want

    def test_goal_on_input_relation_rejected(self):
        with pytest.raises(DatalogError):
            magic_rewrite(parse_program(TC), [("edge", "bf")])

    def test_bad_adornment_rejected(self):
        with pytest.raises(DatalogError):
            magic_rewrite(parse_program(TC), [("path", "bfx")])
        with pytest.raises(DatalogError):
            magic_rewrite(parse_program(TC), [("path", "b")])
