"""End-to-end tests for the Datalog-to-BDD solver."""

import pytest

from repro.datalog import DatalogError, Solver, parse_program


def solve(text, facts, **kwargs):
    prog = parse_program(text)
    solver = Solver(prog, **kwargs)
    for name, tuples in facts.items():
        solver.add_tuples(name, tuples)
    solver.solve()
    return solver


TRANSITIVE_CLOSURE = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


class TestTransitiveClosure:
    def test_chain(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": [(0, 1), (1, 2), (2, 3)]})
        got = set(solver.relation("path").tuples())
        assert got == {(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)}

    def test_cycle(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": [(0, 1), (1, 0)]})
        got = set(solver.relation("path").tuples())
        assert got == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_empty(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": []})
        assert solver.relation("path").is_empty()

    def test_naive_matches_seminaive(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]
        fast = solve(TRANSITIVE_CLOSURE, {"edge": edges})
        slow = solve(TRANSITIVE_CLOSURE, {"edge": edges}, naive=True)
        assert set(fast.relation("path").tuples()) == set(
            slow.relation("path").tuples()
        )

    def test_seminaive_fewer_applications_on_long_chain(self):
        edges = [(i, i + 1) for i in range(20)]
        fast = solve(TRANSITIVE_CLOSURE, {"edge": edges})
        slow = solve(TRANSITIVE_CLOSURE, {"edge": edges}, naive=True)
        assert fast.stats.rule_applications <= slow.stats.rule_applications * 2
        assert fast.stats.iterations >= 2


SAME_GENERATION = """
.domains
N 64
.relations
parent (child : N0, parent : N1) input
sg (a : N0, b : N1) output
.rules
sg(x, x) :- parent(x, _).
sg(x, x) :- parent(_, x).
sg(x, y) :- parent(x, px), sg(px, py), parent(y, py).
"""


class TestSameGeneration:
    def test_small_tree(self):
        #       0
        #     1   2
        #    3 4   5
        parents = [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2)]
        solver = solve(SAME_GENERATION, {"parent": parents})
        got = set(solver.relation("sg").tuples())
        for a, b in [(1, 2), (3, 4), (3, 5), (4, 5)]:
            assert (a, b) in got and (b, a) in got
        assert (1, 3) not in got


class TestConstantsAndDontCares:
    def test_constant_filter(self):
        text = """
.domains
I 16
Z 8
V 16
.relations
actual (invoke : I, param : Z, var : V) input
receiver (invoke : I, var : V) output
.rules
receiver(i, v) :- actual(i, 0, v).
"""
        solver = solve(
            text, {"actual": [(1, 0, 7), (1, 1, 8), (2, 0, 9), (2, 2, 3)]}
        )
        assert set(solver.relation("receiver").tuples()) == {(1, 7), (2, 9)}

    def test_named_constant(self):
        text = """
.domains
V 8
H 8
.relations
vP (v : V, h : H) input
leak (v : V) output
.rules
leak(v) :- vP(v, "a.java:57").
"""
        prog = parse_program(text)
        solver = Solver(
            prog, name_maps={"H": ["other", "a.java:57", "more"]}
        )
        solver.add_tuples("vP", [(3, 1), (4, 2), (5, 1)])
        solver.solve()
        assert set(solver.relation("leak").tuples()) == {(3,), (5,)}

    def test_unknown_named_constant_raises(self):
        text = """
.domains
V 8
.relations
a (v : V) input
b (v : V) output
.rules
b("nope") :- a(_).
"""
        prog = parse_program(text)
        solver = Solver(prog, name_maps={"V": ["a", "b"]})
        solver.add_tuples("a", [(0,)])
        with pytest.raises(DatalogError):
            solver.solve()

    def test_dontcare_projection(self):
        text = """
.domains
V 8
H 8
.relations
vP (v : V, h : H) input
hasPt (v : V) output
.rules
hasPt(v) :- vP(v, _).
"""
        solver = solve(text, {"vP": [(1, 3), (1, 4), (2, 5)]})
        assert set(solver.relation("hasPt").tuples()) == {(1,), (2,)}

    def test_repeated_variable_in_body(self):
        text = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
selfloop (a : N0) output
.rules
selfloop(x) :- edge(x, x).
"""
        solver = solve(text, {"edge": [(1, 1), (1, 2), (3, 3)]})
        assert set(solver.relation("selfloop").tuples()) == {(1,), (3,)}

    def test_repeated_variable_in_head(self):
        text = """
.domains
N 16
.relations
node (a : N) input
diag (a : N0, b : N1) output
.rules
diag(x, x) :- node(x).
"""
        solver = solve(text, {"node": [(2,), (5,)]})
        assert set(solver.relation("diag").tuples()) == {(2, 2), (5, 5)}

    def test_constant_in_head(self):
        text = """
.domains
N 16
.relations
a (x : N) input
b (x : N0, tag : N1) output
.rules
b(x, 7) :- a(x).
"""
        solver = solve(text, {"a": [(1,), (2,)]})
        assert set(solver.relation("b").tuples()) == {(1, 7), (2, 7)}


class TestNegationAndComparison:
    def test_stratified_negation(self):
        text = """
.domains
N 16
.relations
all (x : N) input
bad (x : N) input
good (x : N) output
.rules
good(x) :- all(x), !bad(x).
"""
        solver = solve(text, {"all": [(1,), (2,), (3,)], "bad": [(2,)]})
        assert set(solver.relation("good").tuples()) == {(1,), (3,)}

    def test_negation_with_dontcare(self):
        text = """
.domains
N 16
.relations
node (x : N) input
edge (a : N0, b : N1) input
sink (x : N) output
.rules
sink(x) :- node(x), !edge(x, _).
"""
        solver = solve(
            text, {"node": [(1,), (2,), (3,)], "edge": [(1, 2), (1, 3)]}
        )
        assert set(solver.relation("sink").tuples()) == {(2,), (3,)}

    def test_unstratified_rejected(self):
        text = """
.domains
N 4
.relations
p (x : N)
q (x : N)
.rules
p(x) :- q(x), !p(x).
"""
        prog = parse_program(text)
        # Stratification runs at construction (the plan optimizer needs
        # the strata before any BDD state exists).
        with pytest.raises(DatalogError):
            Solver(prog)

    def test_pure_negation_uses_universe(self):
        # The paper's varSuperTypes rule: head bound only via negation.
        text = """
.domains
N 8
.relations
notIn (x : N) input
inSet (x : N) output
.rules
inSet(x) :- !notIn(x).
"""
        solver = solve(text, {"notIn": [(0,), (3,)]})
        got = set(solver.relation("inSet").tuples())
        assert got == {(i,) for i in range(8)} - {(0,), (3,)}

    def test_inequality(self):
        text = """
.domains
N 8
.relations
pair (a : N0, b : N1) input
strict (a : N0, b : N1) output
.rules
strict(a, b) :- pair(a, b), a != b.
"""
        solver = solve(text, {"pair": [(1, 1), (1, 2), (3, 3), (4, 5)]})
        assert set(solver.relation("strict").tuples()) == {(1, 2), (4, 5)}

    def test_equality_join(self):
        text = """
.domains
N 8
.relations
a (x : N0) input
b (y : N1) input
same (x : N0, y : N1) output
.rules
same(x, y) :- a(x), b(y), x = y.
"""
        solver = solve(text, {"a": [(1,), (2,), (3,)], "b": [(2,), (3,), (4,)]})
        assert set(solver.relation("same").tuples()) == {(2, 2), (3, 3)}

    def test_comparison_with_constant(self):
        text = """
.domains
N 8
.relations
a (x : N) input
nonzero (x : N) output
.rules
nonzero(x) :- a(x), x != 0.
"""
        solver = solve(text, {"a": [(0,), (1,), (2,)]})
        assert set(solver.relation("nonzero").tuples()) == {(1,), (2,)}


class TestMultipleStrata:
    def test_negation_over_recursive_stratum(self):
        text = """
.domains
N 32
.relations
edge (a : N0, b : N1) input
node (a : N) input
path (a : N0, b : N1) output
unreachable (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
unreachable(x, y) :- node(x), node(y), !path(x, y).
"""
        solver = solve(
            text,
            {"edge": [(0, 1), (1, 2)], "node": [(0,), (1,), (2,)]},
        )
        unreachable = set(solver.relation("unreachable").tuples())
        assert (2, 0) in unreachable
        assert (0, 2) not in unreachable

    def test_mutual_recursion(self):
        text = """
.domains
N 32
.relations
next (a : N0, b : N1) input
even (a : N) output
odd (a : N) output
.rules
even(0) :- next(_, _).
odd(y) :- even(x), next(x, y).
even(y) :- odd(x), next(x, y).
"""
        solver = solve(text, {"next": [(i, i + 1) for i in range(6)]})
        assert set(solver.relation("even").tuples()) == {(0,), (2,), (4,), (6,)}
        assert set(solver.relation("odd").tuples()) == {(1,), (3,), (5,)}


class TestSolverInfra:
    def test_stats_populated(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": [(0, 1), (1, 2)]})
        assert solver.stats.seconds >= 0
        assert solver.stats.iterations >= 1
        assert solver.stats.rule_applications >= 2
        assert solver.stats.peak_nodes > 2
        assert solver.stats.peak_bytes == solver.stats.peak_nodes * 16

    def test_relation_count(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": [(0, 1), (1, 2), (2, 3)]})
        assert solver.relation("path").count() == 6

    def test_contains(self):
        solver = solve(TRANSITIVE_CLOSURE, {"edge": [(0, 1), (1, 2)]})
        assert solver.relation("path").contains((0, 2))
        assert not solver.relation("path").contains((2, 0))

    def test_named_tuples(self):
        text = """
.domains
V 4
.relations
a (x : V) input
b (x : V) output
.rules
b(x) :- a(x).
"""
        prog = parse_program(text)
        solver = Solver(prog, name_maps={"V": ["w", "x", "y", "z"]})
        solver.add_tuples("a", [(1,), (3,)])
        solver.solve()
        assert set(solver.named_tuples("b")) == {("x",), ("z",)}

    def test_custom_order_spec(self):
        prog = parse_program(TRANSITIVE_CLOSURE)
        # The solver allocates a third N instance for the 3-variable
        # recursive rule; a custom spec must cover every instance.
        solver = Solver(prog, order_spec="N1xN0_N2")
        solver.add_tuples("edge", [(0, 1), (1, 2)])
        solver.solve()
        assert set(solver.relation("path").tuples()) == {(0, 1), (0, 2), (1, 2)}

    def test_partial_order_spec_completed(self):
        # A spec mentioning only some instances is completed with the
        # missing ones appended, so partial specs survive program growth.
        prog = parse_program(TRANSITIVE_CLOSURE)
        solver = Solver(prog, order_spec="N1xN0")
        assert "N2" in solver.order_spec
        solver.add_tuples("edge", [(0, 1), (1, 2)])
        solver.solve()
        assert set(solver.relation("path").tuples()) == {(0, 1), (0, 2), (1, 2)}

    def test_logical_order_spec_expansion(self):
        prog = parse_program(TRANSITIVE_CLOSURE)
        solver = Solver(prog, order_spec="N")
        assert solver.order_spec == "N0xN1xN2"

    def test_gc_during_solve(self):
        prog = parse_program(TRANSITIVE_CLOSURE)
        solver = Solver(prog, gc_threshold=64)  # force GC nearly every pass
        solver.add_tuples("edge", [(i, i + 1) for i in range(12)])
        solver.solve()
        assert solver.manager.gc_count >= 1
        got = set(solver.relation("path").tuples())
        assert (0, 12) in got and len(got) == 12 * 13 // 2

    def test_unknown_relation_raises(self):
        prog = parse_program(TRANSITIVE_CLOSURE)
        solver = Solver(prog)
        with pytest.raises(DatalogError):
            solver.relation("nope")

    def test_set_node_roundtrip(self):
        prog = parse_program(TRANSITIVE_CLOSURE)
        solver = Solver(prog)
        rel = solver.relation("edge")
        rel.set_tuples([(4, 5)])
        node = rel.node
        solver.set_node("edge", node)
        assert set(rel.tuples()) == {(4, 5)}
