"""Tests for the plan IR, the optimizer pass pipeline, and the executor."""

import pytest

from repro.datalog import (
    DatalogError,
    PASS_NAMES,
    PassOptions,
    Solver,
    parse_program,
    validate_plan,
)
from repro.datalog.passes import (
    DISABLE_ENV_VAR,
    OPT_ENV_VAR,
    _compose_renames,
    replace_cost,
)
from repro.datalog.plan import (
    And,
    CopyInto,
    Exist,
    Load,
    LoadHoisted,
    Replace,
    RulePlan,
    Top,
)

TC = """
.domains
N 16
.relations
e (a : N0, b : N1) input
p (a : N0, b : N1) output
.rules
p(x, y) :- e(x, y).
p(x, z) :- p(x, y), e(y, z).
"""

MULTIJOIN = """
.domains
V 16
H 16
F 8
.relations
vP0 (v : V0, h : H0) input
store (v1 : V0, f : F0, v2 : V1) input
load (v1 : V0, f : F0, v2 : V1) input
vP (v : V0, h : H0) output
hP (h1 : H0, f : F0, h2 : H1) output
.rules
vP(v, h) :- vP0(v, h).
hP(h1, f, h2) :- store(v1, f, v2), vP(v1, h1), vP(v2, h2).
vP(v2, h2) :- load(v1, f, v2), vP(v1, h1), hP(h1, f, h2).
"""


def solve_tc(**kwargs):
    solver = Solver(parse_program(TC), **kwargs)
    solver.add_tuples("e", [(0, 1), (1, 2), (2, 3), (3, 4)])
    solver.solve()
    return solver


class TestValidation:
    def test_all_compiled_plans_validate(self):
        solver = Solver(parse_program(MULTIJOIN))
        for plan in solver.plan_unit.plans.values():
            validate_plan(
                solver.program, plan, hoisted=solver.plan_unit.hoisted
            )

    def test_use_before_def_rejected(self):
        prog = parse_program(TC)
        good = next(iter(Solver(prog, optimize=False)._plans.values()))
        # Reference a register that no earlier op defines.
        schema = good.ops[0].schema
        bad = RulePlan(
            rule=good.rule,
            head_relation=good.head_relation,
            delta_index=good.delta_index,
            ops=[
                And(0, schema, lhs=5, rhs=7, extends=False),
                CopyInto(1, schema, src=0, relation="p"),
            ],
        )
        with pytest.raises(DatalogError):
            validate_plan(prog, bad)

    def test_nonterminated_plan_rejected(self):
        prog = parse_program(TC)
        good = next(iter(Solver(prog, optimize=False)._plans.values()))
        bad = RulePlan(
            rule=good.rule,
            head_relation=good.head_relation,
            delta_index=good.delta_index,
            ops=[Load(0, good.ops[0].schema, relation="e", use_delta=False)],
        )
        with pytest.raises(DatalogError):
            validate_plan(prog, bad)


class TestPassOptions:
    def test_unknown_pass_rejected(self):
        with pytest.raises(DatalogError):
            PassOptions.resolve(True, ["not-a-pass"])

    def test_env_opt_off(self, monkeypatch):
        monkeypatch.delenv(DISABLE_ENV_VAR, raising=False)
        monkeypatch.setenv(OPT_ENV_VAR, "off")
        assert not PassOptions.resolve().enabled
        # Explicit argument beats the environment.
        assert PassOptions.resolve(optimize=True).enabled

    def test_env_disable_csv(self, monkeypatch):
        monkeypatch.delenv(OPT_ENV_VAR, raising=False)
        monkeypatch.setenv(DISABLE_ENV_VAR, "hoist, cse")
        opts = PassOptions.resolve()
        assert opts.enabled
        assert not opts.runs("hoist")
        assert not opts.runs("cse")
        assert opts.runs("coalesce")

    def test_env_unknown_pass_rejected(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV_VAR, "bogus")
        with pytest.raises(DatalogError):
            PassOptions.resolve()

    def test_pass_names_closed(self):
        assert set(PASS_NAMES) == {
            "assign-domains",
            "coalesce",
            "dead-op",
            "hoist",
            "cse",
            "fuse",
            "reorder-rules",
        }


class TestPasses:
    def test_compose_renames(self):
        inner = ((("V", 0), ("V", 1)),)
        outer = ((("V", 1), ("V", 2)),)
        assert _compose_renames(inner, outer) == (
            (("V", 0), ("V", 2)),
        )

    def test_compose_renames_drops_identity(self):
        inner = ((("V", 0), ("V", 1)),)
        outer = ((("V", 1), ("V", 0)),)
        assert _compose_renames(inner, outer) == ()

    def test_optimizer_reduces_replace_cost(self):
        on = Solver(parse_program(TC), optimize=True)
        off = Solver(parse_program(TC), optimize=False)
        cost_on = sum(
            replace_cost(p, set()) for p in on.plan_unit.plans.values()
        )
        cost_off = sum(
            replace_cost(p, set()) for p in off.plan_unit.plans.values()
        )
        assert cost_on < cost_off

    def test_hoist_creates_shared_slot(self):
        solver = Solver(parse_program(TC), optimize=True)
        unit = solver.plan_unit
        assert unit.hoisted, "recursive invariant atom should hoist"
        loads = [
            op
            for plan in unit.plans.values()
            for op in plan.ops
            if isinstance(op, LoadHoisted)
        ]
        assert loads
        assert all(op.slot in unit.hoisted for op in loads)
        # The slot belongs to the stratum containing p.
        assert any(unit.stratum_slots.values())

    def test_disable_hoist(self):
        solver = Solver(
            parse_program(TC), optimize=True, disabled_passes=["hoist"]
        )
        assert not solver.plan_unit.hoisted

    def test_optimized_pool_unchanged(self):
        # The optimizer must never grow the physical domain pool: BDD
        # levels (and therefore fingerprints) depend on it.
        on = Solver(parse_program(MULTIJOIN), optimize=True)
        off = Solver(parse_program(MULTIJOIN), optimize=False)
        assert on._instances == off._instances
        assert on.order_spec == off.order_spec


class TestExecutor:
    def test_same_fixpoint(self):
        on = solve_tc(optimize=True)
        off = solve_tc(optimize=False)
        assert set(on.relation("p").tuples()) == set(
            off.relation("p").tuples()
        )

    def test_executed_op_tally(self):
        solver = solve_tc()
        ops = solver.stats.plan_ops
        assert ops.get("copy_into", 0) > 0
        assert sum(ops.values()) > 0

    def test_optimizer_executes_fewer_replaces(self):
        on = solve_tc(optimize=True)
        off = solve_tc(optimize=False)
        assert on.stats.plan_ops.get("replace", 0) < off.stats.plan_ops.get(
            "replace", 0
        )

    def test_static_plan_op_counts(self):
        solver = solve_tc()
        static = solver.plan_op_counts()
        assert static.get("copy_into", 0) >= 2  # one per rule variant

    def test_traces_recorded(self):
        solver = solve_tc(trace_ops=True)
        traced = [
            plan
            for plan in solver.plan_unit.plans.values()
            if plan.traces is not None
        ]
        assert traced
        for plan in traced:
            for trace in plan.traces:
                count, seconds, max_nodes = trace
                assert count >= 0 and seconds >= 0 and max_nodes >= 0


class TestExplainPlan:
    def test_render_contains_costs(self):
        solver = solve_tc(trace_ops=True)
        text = solver.explain_plans(executed_only=True)
        assert "stratum" in text
        assert "CopyInto" in text
        assert "[x" in text  # execution-count annotation
        assert "optimizer passes:" in text

    def test_render_without_traces(self):
        solver = Solver(parse_program(TC))
        text = solver.explain_plans()
        assert "plan" in text

    def test_noopt_banner(self):
        solver = Solver(parse_program(TC), optimize=False)
        assert "unoptimized" in solver.explain_plans()
