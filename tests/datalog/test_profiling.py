"""Tests for the per-rule evaluation profile."""

from repro.datalog import Solver, parse_program

TC = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
lonely (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
lonely(x, y) :- edge(x, y), edge(y, x).
"""


def solved():
    solver = Solver(parse_program(TC))
    solver.add_tuples("edge", [(i, i + 1) for i in range(8)])
    solver.solve()
    return solver


class TestRuleProfile:
    def test_profile_covers_all_rules(self):
        solver = solved()
        profiles = solver.rule_profile()
        assert len(profiles) == 3
        assert all(p.applications >= 1 for p in profiles)

    def test_recursive_rule_applied_most(self):
        solver = solved()
        by_rule = {p.rule: p for p in solver.rule_profile()}
        recursive = next(p for r, p in by_rule.items() if "path(x, y)" in r and "edge(y, z)" in r or "path(x, y)," in r)
        base = by_rule["path(x, y) :- edge(x, y)."]
        assert recursive.applications > base.applications

    def test_sorted_by_cost(self):
        solver = solved()
        profiles = solver.rule_profile()
        costs = [p.seconds for p in profiles]
        assert costs == sorted(costs, reverse=True)

    def test_unproductive_rule_counts(self):
        solver = solved()
        by_rule = {p.rule: p for p in solver.rule_profile()}
        lonely = by_rule["lonely(x, y) :- edge(x, y), edge(y, x)."]
        # No symmetric edges exist: applications happen, nothing produced.
        assert lonely.applications >= 1
        assert lonely.tuples_produced == 0

    def test_productive_rule_counts(self):
        solver = solved()
        by_rule = {p.rule: p for p in solver.rule_profile()}
        base = by_rule["path(x, y) :- edge(x, y)."]
        assert base.tuples_produced >= 1


class TestForallAndFriends:
    def test_forall_dual_of_exist(self):
        from repro.bdd import BDD

        mgr = BDD(num_vars=4)
        f = mgr.or_(mgr.var_bdd(0), mgr.var_bdd(1))
        vs = mgr.varset([0])
        # forall x0. (x0 | x1) == x1
        assert mgr.forall(f, vs) == mgr.var_bdd(1)
        # exist x0. (x0 | x1) == TRUE
        assert mgr.exist(f, vs) == 1

    def test_implies_iff(self):
        from repro.bdd import BDD

        mgr = BDD(num_vars=4)
        a, b = mgr.var_bdd(0), mgr.var_bdd(1)
        assert mgr.implies(a, a) == 1
        assert mgr.iff(a, a) == 1
        assert mgr.iff(a, b) == mgr.not_(mgr.xor(a, b))
