"""Tests for .map/.tuples serialization."""

import pytest

from repro.datalog import DatalogError, Solver, parse_program
from repro.datalog.io import (
    load_relation,
    load_solver_inputs,
    read_map,
    read_tuples,
    save_relation,
    save_solver_outputs,
    write_map,
    write_tuples,
)

TC = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


class TestMapFiles:
    def test_roundtrip(self, tmp_path):
        names = ["alpha", "beta", "gamma"]
        path = tmp_path / "V.map"
        write_map(path, names)
        assert read_map(path) == names

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.map"
        write_map(path, [])
        assert read_map(path) == []

    def test_names_with_special_chars(self, tmp_path):
        names = ["Main.main:x", "a.java:57", "<global>"]
        path = tmp_path / "H.map"
        write_map(path, names)
        assert read_map(path) == names


class TestTupleFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "r.tuples"
        n = write_tuples(path, [(1, 2), (3, 4)], header="a:N0 b:N1")
        assert n == 2
        assert read_tuples(path) == [(1, 2), (3, 4)]

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "r.tuples"
        path.write_text("# a:N0 b:N1\n1 2\n\n# comment\n3 4\n")
        assert read_tuples(path) == [(1, 2), (3, 4)]

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "r.tuples"
        path.write_text("1 two\n")
        with pytest.raises(DatalogError):
            read_tuples(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "r.tuples"
        write_tuples(path, [])
        assert read_tuples(path) == []


class TestRelationIO:
    def test_save_load_roundtrip(self, tmp_path):
        solver = Solver(parse_program(TC))
        solver.add_tuples("edge", [(0, 1), (1, 2)])
        solver.solve()
        path = tmp_path / "path.tuples"
        n = save_relation(solver.relation("path"), path)
        assert n == 3

        other = Solver(parse_program(TC))
        load_relation(other.relation("edge"), path)  # reuse as input
        assert set(other.relation("edge").tuples()) == {(0, 1), (1, 2), (0, 2)}

    def test_load_replaces_contents(self, tmp_path):
        solver = Solver(parse_program(TC))
        solver.add_tuples("edge", [(9, 9)])
        path = tmp_path / "e.tuples"
        path.write_text("1 2\n")
        load_relation(solver.relation("edge"), path)
        assert set(solver.relation("edge").tuples()) == {(1, 2)}

    def test_arity_mismatch_rejected(self, tmp_path):
        solver = Solver(parse_program(TC))
        path = tmp_path / "bad.tuples"
        path.write_text("1 2 3\n")
        with pytest.raises(DatalogError):
            load_relation(solver.relation("edge"), path)

    def test_header_records_schema(self, tmp_path):
        solver = Solver(parse_program(TC))
        solver.add_tuples("edge", [(0, 1)])
        path = tmp_path / "edge.tuples"
        save_relation(solver.relation("edge"), path)
        first = path.read_text().splitlines()[0]
        assert first.startswith("#") and "src:N0" in first and "dst:N1" in first


class TestSolverIO:
    def test_save_outputs_and_reload_as_inputs(self, tmp_path):
        solver = Solver(parse_program(TC), name_maps={"N": [f"n{i}" for i in range(32)]})
        solver.add_tuples("edge", [(0, 1), (1, 2), (2, 3)])
        solver.solve()
        counts = save_solver_outputs(solver, tmp_path)
        assert counts == {"path": 6}
        assert (tmp_path / "path.tuples").exists()
        assert (tmp_path / "N.map").exists()
        assert read_map(tmp_path / "N.map")[1] == "n1"

        # A second program consumes the saved result as input.
        consumer_text = """
.domains
N 32
.relations
path (src : N0, dst : N1) input
endpoints (src : N0, dst : N1) output
.rules
endpoints(x, y) :- path(x, y), x = 0.
"""
        consumer = Solver(parse_program(consumer_text))
        # Rename file to match the consumer's input relation name.
        loaded = load_solver_inputs(consumer, tmp_path)
        assert loaded == {"path": 6}
        consumer.solve()
        assert set(consumer.relation("endpoints").tuples()) == {
            (0, 1), (0, 2), (0, 3),
        }

    def test_missing_input_files_skipped(self, tmp_path):
        solver = Solver(parse_program(TC))
        assert load_solver_inputs(solver, tmp_path) == {}
