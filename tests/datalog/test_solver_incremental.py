"""``Solver.solve_incremental``: re-solve after input edits.

Each test solves a program twice — once incrementally from a previous
fixpoint, once from scratch on the edited inputs — and asserts the
derived relations are identical.  The stats assert *how* the answer was
reached: pure additions must not recompute any stratum, and removals
must recompute only the affected strata.
"""

from repro.bdd import FALSE
from repro.datalog import Solver, parse_program

TC = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""

# Two strata: reachability, then a stratified-negation query over it.
UNREACHED = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
mark (n : N0) input
path (src : N0, dst : N1) output
missed (n : N0) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
missed(y) :- mark(y), !path(0, y).
"""


def _solver(text, facts):
    solver = Solver(parse_program(text))
    for name, tuples in facts.items():
        solver.add_tuples(name, tuples)
    solver.solve()
    return solver


def _add(solver, name, tuples):
    """Patch an input with new tuples; returns the added-delta node."""
    rel = solver.relation(name)
    m = solver.manager
    node = FALSE
    for t in tuples:
        node = m.or_(node, rel._tuple_node(t))
    delta = m.diff(node, rel.node)
    rel.set_node(m.or_(rel.node, delta))
    return delta


def _remove(solver, name, tuples):
    rel = solver.relation(name)
    m = solver.manager
    node = FALSE
    for t in tuples:
        node = m.or_(node, rel._tuple_node(t))
    rel.set_node(m.diff(rel.node, node))


def _tuples(solver, name):
    return set(solver.relation(name).tuples())


class TestAdditions:
    def test_added_edge_extends_paths(self):
        solver = _solver(TC, {"edge": [(0, 1), (2, 3)]})
        delta = _add(solver, "edge", [(1, 2)])
        solver.solve_incremental({"edge": delta})
        fresh = _solver(TC, {"edge": [(0, 1), (1, 2), (2, 3)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")

    def test_no_op_delta_skips_everything(self):
        solver = _solver(TC, {"edge": [(0, 1)]})
        before = _tuples(solver, "path")
        iterations = solver.stats.iterations
        stats = solver.solve_incremental({})
        assert _tuples(solver, "path") == before
        # Every stratum skipped: no new semi-naive iterations ran.
        assert stats.iterations == iterations

    def test_addition_closing_a_cycle(self):
        solver = _solver(TC, {"edge": [(0, 1), (1, 2)]})
        delta = _add(solver, "edge", [(2, 0)])
        solver.solve_incremental({"edge": delta})
        fresh = _solver(TC, {"edge": [(0, 1), (1, 2), (2, 0)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")

    def test_repeated_increments_reach_the_same_fixpoint(self):
        solver = _solver(TC, {"edge": [(0, 1)]})
        for edge in [(1, 2), (2, 3), (3, 4)]:
            delta = _add(solver, "edge", [edge])
            solver.solve_incremental({"edge": delta})
        fresh = _solver(TC, {"edge": [(0, 1), (1, 2), (2, 3), (3, 4)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")


class TestRemovals:
    def test_removed_edge_retracts_paths(self):
        solver = _solver(TC, {"edge": [(0, 1), (1, 2), (2, 3)]})
        _remove(solver, "edge", [(1, 2)])
        solver.solve_incremental({}, dirty=["edge"])
        fresh = _solver(TC, {"edge": [(0, 1), (2, 3)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")

    def test_mixed_add_and_remove(self):
        solver = _solver(TC, {"edge": [(0, 1), (1, 2)]})
        _remove(solver, "edge", [(1, 2)])
        delta = _add(solver, "edge", [(1, 3)])
        solver.solve_incremental({"edge": delta}, dirty=["edge"])
        fresh = _solver(TC, {"edge": [(0, 1), (1, 3)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")

    def test_removal_in_a_cycle(self):
        solver = _solver(TC, {"edge": [(0, 1), (1, 0), (1, 2)]})
        _remove(solver, "edge", [(1, 0)])
        solver.solve_incremental({}, dirty=["edge"])
        fresh = _solver(TC, {"edge": [(0, 1), (1, 2)]})
        assert _tuples(solver, "path") == _tuples(fresh, "path")


class TestStratification:
    def test_negation_over_grown_relation_recomputes(self):
        # Adding an edge *grows* path, but 'missed' negates path, so the
        # negation stratum must be recomputed, not delta-pushed.
        facts = {"edge": [(0, 1)], "mark": [(1,), (2,)]}
        solver = _solver(UNREACHED, facts)
        assert _tuples(solver, "missed") == {(2,)}
        delta = _add(solver, "edge", [(1, 2)])
        solver.solve_incremental({"edge": delta})
        assert _tuples(solver, "missed") == set()

    def test_removal_repopulates_negation(self):
        facts = {"edge": [(0, 1), (1, 2)], "mark": [(2,)]}
        solver = _solver(UNREACHED, facts)
        assert _tuples(solver, "missed") == set()
        _remove(solver, "edge", [(1, 2)])
        solver.solve_incremental({}, dirty=["edge"])
        assert _tuples(solver, "missed") == {(2,)}

    def test_untouched_strata_are_skipped(self):
        facts = {"edge": [(0, 1)], "mark": [(1,)]}
        solver = _solver(UNREACHED, facts)
        # Editing only 'mark' must not re-derive 'path' (lower stratum).
        path_before = solver.relation("path").node
        delta = _add(solver, "mark", [(0,)])
        solver.solve_incremental({"mark": delta})
        assert solver.relation("path").node == path_before
        # mark(1) is reachable from 0; the newly marked 0 is not
        # (path is irreflexive here), so only 0 is missed.
        assert _tuples(solver, "missed") == {(0,)}


class TestDependents:
    def test_transitive_closure_of_influence(self):
        solver = Solver(parse_program(UNREACHED))
        assert solver.dependents(["edge"]) == {"edge", "path", "missed"}
        assert solver.dependents(["mark"]) == {"mark", "missed"}
        assert solver.dependents([]) == set()
