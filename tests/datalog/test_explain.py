"""Tests for derivation provenance (explain)."""

import pytest

from repro.datalog import DatalogError, Solver, parse_program
from repro.datalog.explain import Derivation, explain, format_derivation

TC = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


@pytest.fixture()
def solved():
    solver = Solver(parse_program(TC))
    solver.add_tuples("edge", [(0, 1), (1, 2), (2, 3)])
    solver.solve()
    return solver


class TestExplain:
    def test_fact_is_leaf(self, solved):
        d = explain(solved, "edge", (0, 1))
        assert d.is_fact
        assert d.children == []

    def test_base_rule_derivation(self, solved):
        d = explain(solved, "path", (0, 1))
        assert not d.is_fact
        assert d.rule.head.relation == "path"
        assert len(d.children) == 1
        assert d.children[0].relation == "edge"

    def test_transitive_derivation_grounds_out(self, solved):
        d = explain(solved, "path", (0, 3))
        # Walk the tree: every leaf must be an input fact.
        def leaves(node):
            if not node.children:
                yield node
            for child in node.children:
                yield from leaves(child)

        for leaf in leaves(d):
            assert leaf.relation in ("edge", "path")
        # At least one edge fact appears.
        assert any(l.relation == "edge" for l in leaves(d))

    def test_absent_tuple_rejected(self, solved):
        with pytest.raises(DatalogError):
            explain(solved, "path", (3, 0))

    def test_every_derived_tuple_explainable(self, solved):
        for values in solved.relation("path").tuples():
            d = explain(solved, "path", values)
            assert d.values == values

    def test_format_derivation(self, solved):
        d = explain(solved, "path", (0, 2))
        text = format_derivation(d, solved)
        assert "path(0, 2)" in text
        assert "edge(" in text
        assert "[by rule:" in text

    def test_format_uses_name_maps(self):
        solver = Solver(
            parse_program(TC), name_maps={"N": [f"node{i}" for i in range(32)]}
        )
        solver.add_tuples("edge", [(0, 1)])
        solver.solve()
        d = explain(solver, "path", (0, 1))
        text = format_derivation(d, solver)
        assert "node0" in text and "node1" in text


DIAMOND = """
.domains
N 32
.relations
edge (src : N0, dst : N1) input
path (src : N0, dst : N1) output
wide (src : N0, dst : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
wide(x, z) :- path(x, z), path(x, z).
"""


class TestExplainMemoization:
    """Sub-derivations are memoized by (relation, tuple, depth): a tuple
    reachable along two branches of the tree is explained once and the
    Derivation object shared (diamond regression)."""

    @pytest.fixture()
    def diamond(self):
        solver = Solver(parse_program(DIAMOND))
        solver.add_tuples("edge", [(i, i + 1) for i in range(12)])
        solver.solve()
        return solver

    def test_shared_subderivation_is_same_object(self, diamond):
        d = explain(diamond, "wide", (0, 12))
        assert [c.relation for c in d.children] == ["path", "path"]
        assert d.children[0] is d.children[1]

    def test_diamond_tree_deduplicates_nodes(self, diamond):
        d = explain(diamond, "wide", (0, 12))

        def walk(node, seen_ids, keys):
            seen_ids.add(id(node))
            keys.append((node.relation, node.values))
            for child in node.children:
                walk(child, seen_ids, keys)

        seen_ids, keys = set(), []
        walk(d, seen_ids, keys)
        # The two path(0, 12) branches collapse onto one shared subtree:
        # distinct objects number half the with-repetition traversal
        # (plus the root).
        assert len(keys) > len(seen_ids)
        assert len(seen_ids) == (len(keys) - 1) // 2 + 1

    def test_memoized_tree_still_grounds_out(self, diamond):
        d = explain(diamond, "wide", (0, 12))

        def leaves(node):
            if not node.children:
                yield node
            for child in node.children:
                yield from leaves(child)

        assert all(leaf.is_fact for leaf in leaves(d))


class TestExplainWithNegation:
    def test_negated_rule_explained(self):
        text = """
.domains
N 8
.relations
all (x : N) input
bad (x : N) input
good (x : N) output
.rules
good(x) :- all(x), !bad(x).
"""
        solver = Solver(parse_program(text))
        solver.add_tuples("all", [(1,), (2,)])
        solver.add_tuples("bad", [(2,)])
        solver.solve()
        d = explain(solver, "good", (1,))
        assert not d.is_fact
        # Only the positive atom contributes a child.
        assert [c.relation for c in d.children] == ["all"]


class TestExplainOnAnalysis:
    def test_points_to_provenance(self):
        """Explain a points-to fact from the actual Algorithm 2 run."""
        from repro.analysis import ContextInsensitiveAnalysis
        from repro.ir import parse_program as parse_mj

        prog = parse_mj(
            """
class Box { field item : Object; }
class Main {
    static method main() {
        b = new Box;
        o = new Object;
        b.item = o;
        x = b.item;
    }
}
""",
            include_library=False,
        )
        result = ContextInsensitiveAnalysis(program=prog).run()
        facts = result.facts
        x = facts.var_id("Main.main", "x")
        h = facts.id_of("H", "Main.main@1:new Object")
        d = explain(result.solver, "vP", (x, h))
        assert not d.is_fact
        # The load rule (4/9) should be the final step: its body mentions
        # the load relation and hP.
        body_rels = [c.relation for c in d.children]
        assert "load" in body_rels
        assert "hP" in body_rels
        text = format_derivation(d, result.solver)
        assert "vP(" in text
