"""Tests for the Datalog parser and AST validation."""

import pytest

from repro.datalog import (
    Atom,
    Comparison,
    DatalogError,
    DontCare,
    NamedConst,
    NumberConst,
    Variable,
    parse_program,
)

BASIC = """
# Algorithm 1, verbatim shape.
.domains
V 262144 variable.map
H 65536

.relations
vP0    (variable : V, heap : H) input
assign (dest : V0, source : V1) input
vP     (variable : V, heap : H) output

.rules
vP(v, h)  :- vP0(v, h).
vP(v1, h) :- assign(v1, v2), vP(v2, h).
"""


class TestSections:
    def test_domains_parsed(self):
        prog = parse_program(BASIC)
        assert prog.domains["V"].size == 262144
        assert prog.domains["V"].map_file == "variable.map"
        assert prog.domains["H"].map_file is None

    def test_relations_parsed(self):
        prog = parse_program(BASIC)
        vp0 = prog.relations["vP0"]
        assert vp0.is_input and not vp0.is_output
        assert [a.name for a in vp0.attributes] == ["variable", "heap"]
        assert [a.domain for a in vp0.attributes] == ["V", "H"]

    def test_explicit_instances(self):
        prog = parse_program(BASIC)
        assign = prog.relations["assign"]
        assert assign.resolved_instances() == (0, 1)

    def test_default_instances_count_up(self):
        prog = parse_program(
            """
.domains
V 16
.relations
r (a : V, b : V, c : V)
.rules
"""
        )
        assert prog.relations["r"].resolved_instances() == (0, 1, 2)

    def test_rules_parsed(self):
        prog = parse_program(BASIC)
        assert len(prog.rules) == 2
        rule = prog.rules[1]
        assert rule.head.relation == "vP"
        assert [a.relation for a in rule.positive_atoms] == ["assign", "vP"]

    def test_comments_ignored(self):
        prog = parse_program(
            """
.domains
V 4   # inline comment
// another comment
.relations
r (a : V)
.rules
r(x) :- r(x).  # trailing
"""
        )
        assert len(prog.rules) == 1

    def test_multiline_rule(self):
        prog = parse_program(
            """
.domains
V 4
H 4
.relations
a (x : V, y : H)
b (x : V, y : H)
.rules
a(x, y) :-
    b(x, y).
"""
        )
        assert len(prog.rules) == 1

    def test_content_before_section_rejected(self):
        with pytest.raises(DatalogError):
            parse_program("V 4\n.domains\n")


class TestTerms:
    def test_constants_and_dontcares(self):
        prog = parse_program(
            """
.domains
I 16
Z 4
V 8
.rules
.relations
actual (invoke : I, param : Z, var : V)
recv (invoke : I, var : V)
.rules
recv(i, v) :- actual(i, 0, v).
"""
        )
        atom = prog.rules[0].positive_atoms[0]
        assert isinstance(atom.terms[1], NumberConst)
        assert atom.terms[1].value == 0

    def test_named_constant(self):
        prog = parse_program(
            """
.domains
H 8
F 8
.relations
hP (base : H, field : F, target : H)
who (h : H, f : F)
.rules
who(h, f) :- hP(h, f, "a.java:57").
"""
        )
        atom = prog.rules[0].positive_atoms[0]
        assert isinstance(atom.terms[2], NamedConst)
        assert atom.terms[2].name == "a.java:57"

    def test_dontcare(self):
        prog = parse_program(
            """
.domains
V 8
H 8
.relations
vP (v : V, h : H)
hasPt (v : V)
.rules
hasPt(v) :- vP(v, _).
"""
        )
        atom = prog.rules[0].positive_atoms[0]
        assert isinstance(atom.terms[1], DontCare)

    def test_negation(self):
        prog = parse_program(
            """
.domains
V 8
T 8
.relations
varExactTypes (v : V, t : T)
notVarType (v : V, t : T)
varSuperTypes (v : V, t : T)
aT (super : T, sub : T)
.rules
notVarType(v, t) :- varExactTypes(v, tv), !aT(t, tv).
varSuperTypes(v, t) :- !notVarType(v, t).
"""
        )
        assert prog.rules[0].negative_atoms[0].relation == "aT"
        assert prog.rules[1].negative_atoms[0].relation == "notVarType"

    def test_comparison(self):
        prog = parse_program(
            """
.domains
T 8
V 8
.relations
vT (v : V, t : T)
refinable (v : V, t : T)
varSuperTypes (v : V, t : T)
aT (super : T, sub : T)
.rules
refinable(v, tc) :- vT(v, td), varSuperTypes(v, tc), aT(td, tc), td != tc.
"""
        )
        comps = prog.rules[0].comparisons
        assert len(comps) == 1
        assert comps[0].op == "!="


class TestValidation:
    def test_unknown_relation_rejected(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
.relations
a (x : V)
.rules
a(x) :- nosuch(x).
"""
            )

    def test_arity_mismatch_rejected(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
.relations
a (x : V)
b (x : V, y : V)
.rules
a(x) :- b(x).
"""
            )

    def test_domain_mismatch_rejected(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
H 4
.relations
a (x : V)
b (x : H)
.rules
a(x) :- b(x).
"""
            )

    def test_dontcare_in_head_rejected(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
.relations
a (x : V, y : V)
b (x : V)
.rules
a(x, _) :- b(x).
"""
            )

    def test_unknown_domain_in_relation(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
.relations
a (x : W)
.rules
"""
            )

    def test_duplicate_relation_rejected(self):
        with pytest.raises(DatalogError):
            parse_program(
                """
.domains
V 4
.relations
a (x : V)
a (x : V)
.rules
"""
            )

    def test_size_override(self):
        prog = parse_program(BASIC, domain_sizes={"V": 100, "H": 10})
        assert prog.domains["V"].size == 100
        assert prog.domains["H"].size == 10

    def test_size_override_unknown_domain(self):
        with pytest.raises(DatalogError):
            parse_program(BASIC, domain_sizes={"Q": 5})

    def test_rule_str_roundtrip_shape(self):
        prog = parse_program(BASIC)
        text = str(prog.rules[1])
        assert "vP(v1, h)" in text and "assign(v1, v2)" in text
