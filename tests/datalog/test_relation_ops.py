"""Focused unit tests for the Relation layer's set-algebra operations."""

import pytest

from repro.bdd import BDDError
from repro.datalog import Solver, parse_program

TEXT = """
.domains
A 16
B 16
.relations
r (x : A, y : B) input
s (x : A, y : B) input
out (x : A, y : B) output
.rules
out(x, y) :- r(x, y).
"""


@pytest.fixture()
def solver():
    sol = Solver(parse_program(TEXT))
    sol.add_tuples("r", [(1, 2), (1, 3), (4, 5)])
    sol.add_tuples("s", [(1, 2), (9, 9)])
    return sol


class TestRelationAlgebra:
    def test_select_single_attribute(self, solver):
        sel = solver.relation("r").select(x=1)
        assert set(sel.tuples()) == {(2,), (3,)}

    def test_select_all_attributes(self, solver):
        sel = solver.relation("r").select(x=1, y=2)
        assert set(sel.tuples()) == {()}

    def test_select_unknown_attribute(self, solver):
        with pytest.raises(BDDError):
            solver.relation("r").select(nope=1)

    def test_project(self, solver):
        proj = solver.relation("r").project("x")
        assert set(proj.tuples()) == {(1,), (4,)}

    def test_project_reorder(self, solver):
        proj = solver.relation("r").project("y", "x")
        # Attribute order in output follows the relation's schema order.
        names = [a.name for a in proj.attributes]
        assert set(names) == {"x", "y"}

    def test_project_unknown(self, solver):
        with pytest.raises(BDDError):
            solver.relation("r").project("z")

    def test_union_node_returns_delta(self, solver):
        r = solver.relation("r")
        s = solver.relation("s")
        delta = r.union_node(s.node)
        assert delta != 0  # (9, 9) was new
        assert r.contains((9, 9))
        # Unioning again yields no delta.
        assert r.union_node(s.node) == 0

    def test_contains(self, solver):
        assert solver.relation("r").contains((1, 2))
        assert not solver.relation("r").contains((2, 1))

    def test_count_and_is_empty(self, solver):
        assert solver.relation("r").count() == 3
        assert not solver.relation("r").is_empty()
        solver.relation("r").clear()
        assert solver.relation("r").is_empty()
        assert solver.relation("r").count() == 0

    def test_add_tuple_incremental(self, solver):
        r = solver.relation("r")
        before = r.version
        r.add_tuple((7, 7))
        assert r.contains((7, 7))
        assert r.version > before

    def test_set_tuples_replaces(self, solver):
        r = solver.relation("r")
        r.set_tuples([(0, 0)])
        assert set(r.tuples()) == {(0, 0)}

    def test_arity_mismatch(self, solver):
        with pytest.raises(BDDError):
            solver.relation("r").add_tuple((1, 2, 3))

    def test_version_unchanged_on_noop(self, solver):
        r = solver.relation("r")
        v = r.version
        r.set_node(r.node)
        assert r.version == v

    def test_levels_cover_all_attributes(self, solver):
        r = solver.relation("r")
        assert len(r.levels()) == sum(a.phys.bits for a in r.attributes)
