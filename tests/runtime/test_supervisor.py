"""The process supervisor: fault matrix, retries, recovery, and the pool.

Every injected fault kind is driven through the real subprocess path and
must come back as a *structured* classification — never a raw traceback,
never a hung parent.  The backoff schedule is tested with an injected
clock (no real sleeps); only the hang test pays real wall time, bounded
by its sub-second deadline.
"""

import json
import pathlib

import pytest

from repro.runtime import WorkerCrashed, WorkerKilled
from repro.runtime import faults
from repro.runtime.faults import FaultSpecError
from repro.runtime.supervisor import (
    AttemptRecord,
    Supervisor,
    SupervisorConfig,
    SupervisedResult,
    ladder_fallbacks,
    _last_protocol_line,
)
from repro.runtime.worker import WorkerPool, run_job

CLEAN_MJ = """
class Main {
    static method main() {
        a = new Object;
        b = a;
    }
}
"""


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.mj"
    path.write_text(CLEAN_MJ)
    return str(path)


def probe_job(fault=None, **extra):
    job = {"kind": "probe", "echo": "x", **extra}
    if fault:
        job["env"] = {"REPRO_FAULT": fault}
    return job


def fast_config(**kw):
    kw.setdefault("timeout", 60)
    kw.setdefault("retries", 0)
    kw.setdefault("backoff_base", 0.0)
    kw.setdefault("jitter", 0.0)
    return SupervisorConfig(**kw)


# ----------------------------------------------------------------------
# Fault spec grammar
# ----------------------------------------------------------------------


class TestFaultSpecs:
    def test_parse_basic(self):
        (f,) = faults.parse_spec("exception@probe")
        assert (f.kind, f.site, f.after, f.max_attempt) == (
            "exception", "probe", 1, None,
        )

    def test_parse_hits_and_attempt(self):
        (f,) = faults.parse_spec("oom@bdd.mk#7~2")
        assert (f.kind, f.site, f.after, f.max_attempt) == ("oom", "bdd.mk", 7, 2)

    def test_parse_multiple(self):
        specs = faults.parse_spec("exception@probe,hang@solver.stratum#3")
        assert [f.site for f in specs] == ["probe", "solver.stratum"]

    def test_parse_stride(self):
        (f,) = faults.parse_spec("exception@serve.dispatch#10%100")
        assert (f.site, f.after, f.stride) == ("serve.dispatch", 10, 100)

    def test_stride_defaults_to_every_arrival(self):
        (f,) = faults.parse_spec("exception@probe#2")
        assert f.stride == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "nope@probe", "exception", "exception@", "oom@x#zero", "oom@x#0",
            "exception@x%0", "exception@x%minus",
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            faults.parse_spec(bad)

    def test_stride_fires_intermittently(self):
        # Due at hit 2, then every 3rd arrival: hits 2, 5, 8, ...
        try:
            faults.arm("exception@probe#2%3", attempt=0)
            fired = []
            for hit in range(1, 10):
                try:
                    faults.fire("probe")
                except faults.FaultError:
                    fired.append(hit)
            assert fired == [2, 5, 8]
        finally:
            faults.disarm()

    def test_attempt_bound_filters(self):
        try:
            faults.arm("exception@probe~1", attempt=0)
            assert faults.armed
            faults.arm("exception@probe~1", attempt=1)
            assert not faults.armed
        finally:
            faults.disarm()

    def test_fire_waits_for_hit_count(self):
        try:
            faults.arm("exception@probe#3", attempt=0)
            faults.fire("probe")
            faults.fire("probe")
            with pytest.raises(faults.FaultError):
                faults.fire("probe")
        finally:
            faults.disarm()

    def test_disarmed_fire_is_noop(self):
        faults.disarm()
        faults.fire("probe")  # must not raise


# ----------------------------------------------------------------------
# The classification matrix (real subprocesses)
# ----------------------------------------------------------------------


class TestClassification:
    def test_success(self):
        result = Supervisor(fast_config()).run(probe_job())
        assert isinstance(result, SupervisedResult)
        assert result.ok and not result.degraded
        assert result.value["echo"] == "x"
        assert result.retries == 0
        assert result.attempts[0].classification == "ok"
        assert result.attempts[0].exit_code == 0

    def test_clean_exception(self):
        with pytest.raises(WorkerCrashed) as info:
            Supervisor(fast_config()).run(probe_job("exception@probe"))
        err = info.value
        assert err.classification == "exception"
        assert err.exit_code == 1
        assert len(err.attempts) == 1
        assert "FaultError" in err.attempts[0]["message"] or "injected" in (
            err.attempts[0]["message"]
        )

    def test_hard_abort(self):
        with pytest.raises(WorkerCrashed) as info:
            Supervisor(fast_config()).run(probe_job("abort@probe"))
        err = info.value
        assert err.classification == "abort"
        assert err.term_signal == 6  # SIGABRT

    def test_oom_under_rlimit(self):
        config = fast_config(memory_limit_mb=192)
        with pytest.raises(WorkerCrashed) as info:
            Supervisor(config).run(probe_job("oom@probe"))
        # Under RLIMIT_AS the allocator fails inside the child, which
        # still manages a structured protocol message.
        assert info.value.classification == "oom"

    def test_hang_escalates_to_sigkill(self):
        config = fast_config(timeout=0.8, grace=0.2)
        with pytest.raises(WorkerKilled) as info:
            Supervisor(config).run(probe_job("hang@probe"))
        err = info.value
        assert err.classification == "hang"
        assert err.term_signal == 9  # SIGKILL: SIGTERM was ignored
        assert err.attempts[0]["escalated"] is True

    def test_fault_seam_bdd_mk(self):
        with pytest.raises(WorkerCrashed) as info:
            Supervisor(fast_config()).run(
                {"kind": "solve_tc", "chain": 12,
                 "env": {"REPRO_FAULT": "exception@bdd.mk"}}
            )
        assert info.value.classification == "exception"

    def test_fault_seam_solver_stratum(self):
        with pytest.raises(WorkerCrashed) as info:
            Supervisor(fast_config()).run(
                {"kind": "solve_tc", "chain": 12,
                 "env": {"REPRO_FAULT": "exception@solver.stratum"}}
            )
        assert info.value.classification == "exception"

    def test_solve_tc_success(self):
        result = Supervisor(fast_config()).run({"kind": "solve_tc", "chain": 10})
        assert result.value["paths"] == 55
        assert result.value["peak_nodes"] > 0


# ----------------------------------------------------------------------
# Retry schedule (injected clock — no real sleeping)
# ----------------------------------------------------------------------


class _FailingSupervisor(Supervisor):
    """Fails the first ``failures`` attempts without spawning processes."""

    def __init__(self, config, failures, **kw):
        super().__init__(config, **kw)
        self._failures = failures

    def run_attempt(self, job, attempt=0):
        if attempt < self._failures:
            return AttemptRecord(
                mode=job.get("mode", "full"), attempt=attempt,
                classification="crash", exit_code=3,
            )
        return AttemptRecord(
            mode=job.get("mode", "full"), attempt=attempt,
            classification="ok", exit_code=0, result={"attempt": attempt},
        )


class TestBackoff:
    def test_exponential_schedule(self):
        sleeps = []
        config = SupervisorConfig(
            retries=3, backoff_base=0.5, backoff_factor=2.0, jitter=0.0
        )
        sup = _FailingSupervisor(config, failures=3, sleep=sleeps.append)
        result = sup.run({"kind": "probe"})
        assert result.ok and result.retries == 3
        assert sleeps == [0.5, 1.0, 2.0]
        assert [a.backoff for a in result.attempts] == [0.5, 1.0, 2.0, None]

    def test_backoff_cap(self):
        sleeps = []
        config = SupervisorConfig(
            retries=4, backoff_base=10.0, backoff_factor=10.0,
            backoff_max=30.0, jitter=0.0,
        )
        sup = _FailingSupervisor(config, failures=4, sleep=sleeps.append)
        sup.run({"kind": "probe"})
        assert sleeps == [10.0, 30.0, 30.0, 30.0]

    def test_jitter_stretches_delay(self):
        class FixedRng:
            @staticmethod
            def random():
                return 1.0

        sleeps = []
        config = SupervisorConfig(
            retries=1, backoff_base=1.0, backoff_factor=2.0, jitter=0.25
        )
        sup = _FailingSupervisor(
            config, failures=1, sleep=sleeps.append, rng=FixedRng()
        )
        sup.run({"kind": "probe"})
        assert sleeps == [1.25]

    def test_no_sleep_after_final_failure(self):
        sleeps = []
        config = SupervisorConfig(retries=2, backoff_base=0.5, jitter=0.0)
        sup = _FailingSupervisor(config, failures=99, sleep=sleeps.append)
        with pytest.raises(WorkerCrashed) as info:
            sup.run({"kind": "probe"})
        assert len(info.value.attempts) == 3
        assert sleeps == [0.5, 1.0]  # none after the last attempt

    def test_retry_recovers(self):
        config = SupervisorConfig(retries=2, backoff_base=0.0, jitter=0.0)
        sup = _FailingSupervisor(config, failures=2, sleep=lambda _ : None)
        result = sup.run({"kind": "probe"})
        assert result.ok
        assert [a.classification for a in result.attempts] == [
            "crash", "crash", "ok",
        ]


# ----------------------------------------------------------------------
# Degradation step-down and checkpoint recovery (real subprocesses)
# ----------------------------------------------------------------------


def _stratum_hits(facts):
    """Count solver.stratum site arrivals for the call-graph phase and a
    whole full rung, so fault hit counts can be planted *inside* the
    context-sensitive solve regardless of how the programs evolve."""
    from repro.analysis import ContextSensitiveAnalysis

    try:
        faults.arm("exception@solver.stratum#999999999", attempt=0)
        analysis = ContextSensitiveAnalysis(facts=facts, degrade=False)
        analysis._obtain_call_graph()
        ci_hits = faults._SITES["solver.stratum"].hits
        faults.arm("exception@solver.stratum#999999999", attempt=0)
        ContextSensitiveAnalysis(facts=facts, degrade=False).run_rung("full")
        total = faults._SITES["solver.stratum"].hits
    finally:
        faults.disarm()
    return ci_hits, total


@pytest.fixture(scope="module")
def clean_facts():
    from repro.ir.facts import extract_facts
    from repro.ir.frontend import parse_program

    return extract_facts(parse_program(CLEAN_MJ, include_library=False))


class TestRecovery:
    def test_ladder_fallbacks_shape(self, clean_file):
        job = {"kind": "analyze", "program_path": clean_file, "mode": "full"}
        assert [f["mode"] for f in ladder_fallbacks(job)] == [
            "truncated", "context_insensitive",
        ]
        job["mode"] = "truncated"
        assert [f["mode"] for f in ladder_fallbacks(job)] == [
            "context_insensitive",
        ]
        job["mode"] = "context_insensitive"
        assert ladder_fallbacks(job) == []

    def test_step_down_to_truncated(self, clean_file, clean_facts):
        ci_hits, total = _stratum_hits(clean_facts)
        assert total - ci_hits > 2, "fault must be plantable in the CS solve"
        hit = ci_hits + 2
        # ~1 scopes the fault to attempt 0: the full rung crashes, the
        # truncated fallback (attempt 1) runs clean.
        job = {
            "kind": "analyze", "program_path": clean_file,
            "no_library": True, "context_sensitive": True, "mode": "full",
            "env": {"REPRO_FAULT": f"exception@solver.stratum#{hit}~1"},
        }
        sup = Supervisor(fast_config())
        result = sup.run(job, fallbacks=ladder_fallbacks(job))
        assert result.ok and result.degraded
        assert result.mode == "truncated"
        assert [a.classification for a in result.attempts] == [
            "exception", "ok",
        ]

    def test_checkpoint_resume_across_retry(
        self, clean_file, clean_facts, tmp_path
    ):
        ref = Supervisor(fast_config()).run(
            {
                "kind": "analyze", "program_path": clean_file,
                "no_library": True, "context_sensitive": True, "mode": "full",
            }
        )
        ci_hits, total = _stratum_hits(clean_facts)
        hit = ci_hits + (total - ci_hits) // 2 + 1
        ckdir = tmp_path / "ckpt"
        job = {
            "kind": "analyze", "program_path": clean_file,
            "no_library": True, "context_sensitive": True, "mode": "full",
            "checkpoint_dir": str(ckdir),
            "env": {"REPRO_FAULT": f"exception@solver.stratum#{hit}~1"},
        }
        result = Supervisor(fast_config(retries=1)).run(job)
        # Attempt 0 crashed mid-solve after checkpointing; attempt 1
        # resumed from that checkpoint and produced the same answer.
        assert [a.classification for a in result.attempts] == [
            "exception", "ok",
        ]
        assert result.value["resumed"] is True
        assert result.value["tuples"] == ref.value["tuples"]
        # The checkpoint was consumed by the successful attempt.
        assert not (ckdir / "context_sensitive.ckpt").exists()

    def test_crash_reports_written(self, tmp_path):
        crash_dir = tmp_path / "crashes"
        config = fast_config(retries=1, crash_dir=str(crash_dir))
        with pytest.raises(WorkerCrashed):
            Supervisor(config).run(probe_job("exception@probe"))
        reports = sorted(crash_dir.glob("crash-*.json"))
        assert len(reports) == 2  # one per failed attempt
        data = json.loads(reports[0].read_text())
        assert data["attempt"]["classification"] == "exception"
        assert data["job"]["kind"] == "probe"


# ----------------------------------------------------------------------
# Worker protocol and pool
# ----------------------------------------------------------------------


class TestWorkerProtocol:
    def test_run_job_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            run_job({"kind": "frobnicate"})

    def test_last_protocol_line_skips_garbage(self):
        out = b'noise\n{"not": "protocol"}\n{"ok": true, "result": 1}\ntrailing'
        assert _last_protocol_line(out) == {"ok": True, "result": 1}

    def test_last_protocol_line_empty(self):
        assert _last_protocol_line(b"") is None
        assert _last_protocol_line(b"garbage only\n") is None

    def test_stray_stdout_does_not_break_protocol(self):
        # A job that prints goes to stderr (stdout is reserved), but even
        # hostile stdout noise is survivable thanks to last-line-wins.
        result = Supervisor(fast_config()).run(probe_job())
        assert result.ok


class TestWorkerPool:
    def test_poisoned_entry_does_not_stop_others(self):
        jobs = [
            probe_job(echo=0),
            probe_job("abort@probe", echo=1),
            probe_job(echo=2),
        ]
        for i, job in enumerate(jobs):
            job["echo"] = i
        pool = WorkerPool(Supervisor(fast_config()), jobs=2)
        results = pool.run(jobs)
        assert len(results) == 3
        assert results[0].ok and results[0].value["echo"] == 0
        assert isinstance(results[1], WorkerCrashed)
        assert results[1].classification == "abort"
        assert results[2].ok and results[2].value["echo"] == 2

    def test_serial_pool(self):
        pool = WorkerPool(Supervisor(fast_config()), jobs=1)
        results = pool.run([probe_job(echo=i) for i in range(2)])
        assert [r.value["echo"] for r in results] == [0, 1]

    def test_results_order_preserved(self):
        jobs = []
        for i in range(4):
            job = probe_job()
            job["echo"] = i
            jobs.append(job)
        pool = WorkerPool(Supervisor(fast_config()), jobs=3)
        results = pool.run(jobs)
        assert [r.value["echo"] for r in results] == [0, 1, 2, 3]
