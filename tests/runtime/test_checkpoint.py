"""Checkpoint/resume: atomicity, corruption detection, bit-identity."""

import hashlib
import subprocess
import sys

import pytest

from repro.bdd.serialize import dump_bdd_lines
from repro.datalog import Solver, parse_program
from repro.runtime import (
    CheckpointError,
    IterationLimitExceeded,
    ResourceBudget,
    load_checkpoint,
    save_checkpoint,
)

SOURCE = """
.domains
N 32
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
same (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
same(x, y) :- path(x, y), path(y, x).
"""

EDGES = [(i, i + 1) for i in range(12)] + [(12, 0)]


def build(order_spec=None, budget=None):
    solver = Solver(parse_program(SOURCE), order_spec=order_spec, budget=budget)
    solver.add_tuples("edge", EDGES)
    return solver


def canonical_dump(solver) -> str:
    """Canonical serialization of every relation, order-independent of
    manager handle values."""
    names = sorted(solver.relations)
    lines, _ = dump_bdd_lines(
        solver.manager, [solver.relations[n].node for n in names]
    )
    return "\n".join(lines)


class TestRoundTrip:
    def test_full_state_round_trips(self, tmp_path):
        first = build()
        first.solve()
        path = tmp_path / "solved.ckpt"
        meta = save_checkpoint(first, path, next_stratum=3)
        assert meta.next_stratum == 3

        second = build()
        restored = load_checkpoint(second, path)
        assert restored.next_stratum == 3
        for name in first.relations:
            assert set(second.relation(name).tuples()) == set(
                first.relation(name).tuples()
            )

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        solver = build()
        solver.solve()
        save_checkpoint(solver, tmp_path / "a.ckpt")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "a.ckpt"]
        assert leftovers == []

    def test_restore_across_different_variable_order(self, tmp_path):
        first = build()
        first.solve()
        path = tmp_path / "order.ckpt"
        save_checkpoint(first, path)
        # N0 and N1 separated instead of interleaved: different levels.
        second = build(order_spec="N0_N1")
        assert second.order_spec != first.order_spec
        load_checkpoint(second, path)
        for name in first.relations:
            assert set(second.relation(name).tuples()) == set(
                first.relation(name).tuples()
            )

    def test_extra_meta_travels(self, tmp_path):
        solver = build()
        solver.solve()
        meta = save_checkpoint(
            solver, tmp_path / "m.ckpt", extra_meta={"reason": "node_budget"}
        )
        assert meta.meta["reason"] == "node_budget"
        fresh = build()
        restored = load_checkpoint(fresh, tmp_path / "m.ckpt")
        assert restored.meta["reason"] == "node_budget"


class TestCorruption:
    def make(self, tmp_path):
        solver = build()
        solver.solve()
        path = tmp_path / "c.ckpt"
        save_checkpoint(solver, path)
        return path

    def test_bad_magic(self, tmp_path):
        path = self.make(tmp_path)
        path.write_text("# something else\n" + path.read_text())
        with pytest.raises(CheckpointError, match="not a repro-checkpoint"):
            load_checkpoint(build(), path)

    def test_truncated_payload(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-5]) + "\n")
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(build(), path)

    def test_flipped_payload_bit_fails_checksum(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        # Flip one digit inside a node record, keeping the line count.
        for i, line in enumerate(lines):
            if line.startswith("node "):
                parts = line.split()
                parts[2] = str(int(parts[2]) ^ 1)
                lines[i] = " ".join(parts)
                break
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(build(), path)

    def test_corrupt_meta_json(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = "meta {not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt meta json"):
            load_checkpoint(build(), path)

    def test_schema_drift_detected(self, tmp_path):
        path = self.make(tmp_path)
        other = Solver(parse_program(SOURCE, domain_sizes={"N": 64}))
        with pytest.raises(CheckpointError, match="schema"):
            load_checkpoint(other, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(build(), tmp_path / "nope.ckpt")

    def test_dangling_node_reference(self, tmp_path):
        path = self.make(tmp_path)
        lines = path.read_text().splitlines()
        payload_at = next(
            i for i, l in enumerate(lines) if l.startswith("# repro-bdd")
        )
        # Point the last node at a child id that is never defined, then
        # re-sign the payload so only the structural check can catch it.
        for i in range(len(lines) - 1, payload_at, -1):
            if lines[i].startswith("node "):
                parts = lines[i].split()
                parts[3] = "99999"
                lines[i] = " ".join(parts)
                break
        payload = "\n".join(lines[payload_at:])
        digest = hashlib.sha256(payload.encode()).hexdigest()
        lines[2] = f"sha256 {digest}"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="unknown child"):
            load_checkpoint(build(), path)


class TestBitIdenticalResume:
    def test_interrupt_resume_same_process(self, tmp_path):
        reference = build()
        reference.solve()
        want = canonical_dump(reference)

        interrupted = build(budget=ResourceBudget(max_iterations=3))
        with pytest.raises(IterationLimitExceeded) as exc:
            interrupted.solve()
        path = tmp_path / "mid.ckpt"
        save_checkpoint(
            interrupted, path, next_stratum=exc.value.completed_strata
        )

        resumed = build()
        meta = load_checkpoint(resumed, path)
        resumed.solve(start_stratum=meta.next_stratum)
        assert canonical_dump(resumed) == want

    def test_interrupt_resume_fresh_process(self, tmp_path):
        """The acceptance demo: a mid-solve checkpoint resumed in a fresh
        interpreter yields bit-identical relation BDDs."""
        reference = build()
        reference.solve()
        want = canonical_dump(reference)

        interrupted = build(budget=ResourceBudget(max_iterations=2))
        with pytest.raises(IterationLimitExceeded) as exc:
            interrupted.solve()
        path = tmp_path / "fresh.ckpt"
        save_checkpoint(
            interrupted, path, next_stratum=exc.value.completed_strata
        )

        script = f"""
import sys
from repro.datalog import Solver, parse_program
from repro.runtime import load_checkpoint
from repro.bdd.serialize import dump_bdd_lines

SOURCE = '''{SOURCE}'''
solver = Solver(parse_program(SOURCE))
solver.add_tuples("edge", {EDGES!r})
meta = load_checkpoint(solver, {str(path)!r})
solver.solve(start_stratum=meta.next_stratum)
names = sorted(solver.relations)
lines, _ = dump_bdd_lines(
    solver.manager, [solver.relations[n].node for n in names]
)
sys.stdout.write("\\n".join(lines))
"""
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == want


class TestVersionStamp:
    """Checkpoints are stamped with the schema revision and tool version;
    incompatible stamps are rejected before any payload is parsed."""

    @staticmethod
    def _tamper(path, tmp_path, **updates):
        import json
        import pathlib

        lines = pathlib.Path(path).read_text().splitlines()
        meta = json.loads(lines[1][len("meta "):])
        for key, value in updates.items():
            if value is None:
                meta.pop(key, None)
            else:
                meta[key] = value
        lines[1] = "meta " + json.dumps(
            meta, sort_keys=True, separators=(",", ":")
        )
        out = tmp_path / "tampered.ckpt"
        out.write_text("\n".join(lines) + "\n")
        return out

    def _saved(self, tmp_path):
        solver = build()
        solver.solve()
        path = tmp_path / "stamped.ckpt"
        save_checkpoint(solver, path)
        return path

    def test_stamp_is_written(self, tmp_path):
        import json
        import pathlib

        from repro import __version__
        from repro.runtime.checkpoint import FORMAT_VERSION

        path = self._saved(tmp_path)
        meta = json.loads(
            pathlib.Path(path).read_text().splitlines()[1][len("meta "):]
        )
        assert meta["format_version"] == FORMAT_VERSION
        assert meta["tool"] == {"name": "repro", "version": __version__}

    def test_future_format_version_rejected(self, tmp_path):
        from repro.runtime import InvalidInputError
        from repro.runtime.checkpoint import FORMAT_VERSION

        bad = self._tamper(
            self._saved(tmp_path), tmp_path,
            format_version=FORMAT_VERSION + 1,
        )
        with pytest.raises(InvalidInputError, match="format_version"):
            load_checkpoint(build(), bad)

    def test_tool_major_mismatch_rejected(self, tmp_path):
        from repro.runtime import InvalidInputError

        bad = self._tamper(
            self._saved(tmp_path), tmp_path, tool={"version": "99.0.0"}
        )
        with pytest.raises(InvalidInputError, match="99.0.0"):
            load_checkpoint(build(), bad)

    def test_unstamped_legacy_file_still_loads(self, tmp_path):
        legacy = self._tamper(
            self._saved(tmp_path), tmp_path, format_version=None, tool=None
        )
        solver = build()
        load_checkpoint(solver, legacy)
        reference = build()
        reference.solve()
        assert set(solver.relation("path").tuples()) == set(
            reference.relation("path").tuples()
        )
