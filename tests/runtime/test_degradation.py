"""The degradation ladder: soundness, reporting, and the kill-switch demo."""

import json

import pytest

from repro.analysis import ContextInsensitiveAnalysis, ContextSensitiveAnalysis
from repro.bench.corpus import CORPUS, corpus_program
from repro.runtime import NodeBudgetExceeded, ReproError, ResourceBudget

SMALL = "freetts"
# The largest corpus entry — the paper-scale stress case for the demo.
LARGEST = max(
    CORPUS, key=lambda e: e.params.layers * e.params.width * e.params.fanout
).name


@pytest.fixture(scope="module")
def small_program():
    return corpus_program(SMALL)


@pytest.fixture(scope="module")
def small_reference(small_program):
    """Ungoverned context-sensitive fixpoint on the small entry."""
    result = ContextSensitiveAnalysis(program=small_program).run()
    return set(result._points_to_tuples())


class TestGovernedRuns:
    def test_generous_budget_not_degraded(self, small_program, small_reference):
        result = ContextSensitiveAnalysis(
            program=small_program, budget=ResourceBudget(timeout=300)
        ).run()
        assert result.degraded is False
        assert result.degradation.final_mode == "full"
        assert [a.outcome for a in result.degradation.attempts] == ["ok"]
        assert set(result._points_to_tuples()) == small_reference

    def test_tiny_node_budget_degrades_to_ci(
        self, small_program, small_reference
    ):
        result = ContextSensitiveAnalysis(
            program=small_program,
            budget=ResourceBudget(timeout=300, node_budget=2000),
        ).run()
        assert result.degraded is True
        report = result.degradation
        assert report.final_mode == "context_insensitive"
        modes = [a.mode for a in report.attempts]
        assert modes == ["full", "reorder", "truncated", "context_insensitive"]
        assert [a.outcome for a in report.attempts[:-1]] == ["node_budget"] * 3
        assert report.attempts[-1].outcome == "ok"
        # Sound: the degraded answer over-approximates the full one.
        assert set(result._points_to_tuples()) >= small_reference

    def test_degraded_ci_equals_plain_ci(self, small_program):
        governed = ContextSensitiveAnalysis(
            program=small_program,
            budget=ResourceBudget(timeout=300, node_budget=2000),
        ).run()
        assert governed.degradation.final_mode == "context_insensitive"
        plain = ContextInsensitiveAnalysis(program=small_program).run()
        assert set(governed._points_to_tuples()) == set(
            plain._points_to_tuples()
        )

    def test_degrade_false_raises_with_context(self, small_program):
        with pytest.raises(NodeBudgetExceeded) as exc:
            ContextSensitiveAnalysis(
                program=small_program,
                budget=ResourceBudget(node_budget=2000),
                degrade=False,
            ).run()
        err = exc.value
        assert err.completed_strata is not None
        assert err.stratum  # names the interrupted predicates
        assert err.stats is not None

    def test_checkpoint_dir_receives_checkpoint(
        self, small_program, tmp_path
    ):
        result = ContextSensitiveAnalysis(
            program=small_program,
            budget=ResourceBudget(timeout=300, node_budget=2000),
            checkpoint_dir=str(tmp_path),
        ).run()
        assert result.degraded
        ckpt = tmp_path / "context_sensitive.ckpt"
        assert ckpt.exists()
        assert ckpt.read_text().startswith("# repro-checkpoint 2")

    def test_report_is_machine_readable(self, small_program):
        result = ContextSensitiveAnalysis(
            program=small_program,
            budget=ResourceBudget(timeout=300, node_budget=2000),
        ).run()
        payload = json.dumps(result.degradation.to_dict())
        parsed = json.loads(payload)
        assert parsed["degraded"] is True
        assert parsed["final_mode"] == "context_insensitive"
        assert {a["mode"] for a in parsed["attempts"]} >= {
            "full",
            "context_insensitive",
        }
        for attempt in parsed["attempts"]:
            assert set(attempt) == {
                "mode",
                "outcome",
                "seconds",
                "peak_nodes",
                "detail",
            }


class TestKillSwitchDemo:
    """Acceptance: the largest corpus entry under a tiny node budget
    terminates within the deadline with a sound degraded answer."""

    def test_kill_switch_on_largest_entry(self):
        program = corpus_program(LARGEST)
        deadline = 300.0
        result = ContextSensitiveAnalysis(
            program=program,
            budget=ResourceBudget(timeout=deadline, node_budget=5000),
        ).run()
        assert result.seconds < deadline
        assert result.degraded is True
        report = result.degradation
        assert report.final_mode == "context_insensitive"
        assert all(
            a.outcome in ("node_budget", "timeout") for a in report.attempts[:-1]
        )
        ci = ContextInsensitiveAnalysis(program=program).run()
        assert set(result._points_to_tuples()) == set(ci._points_to_tuples())


class TestLadderMiddleRungs:
    def test_resume_after_reorder_reaches_full_fixpoint(
        self, small_program, small_reference
    ):
        """A budget the first attempt just misses exercises the resume
        rung; whatever rung finishes, the answer must be sound."""
        analysis = ContextSensitiveAnalysis(
            program=small_program,
            budget=ResourceBudget(timeout=300, node_budget=45000),
        )
        # Rung 2 gets the same node budget; whether it succeeds depends
        # on how much sifting helps.  Either way the final answer must be
        # sound and the attempts list coherent.
        result = analysis.run()
        report = result.degradation
        assert report is not None
        assert report.attempts[0].mode == "full"
        if report.final_mode in ("full", "reorder", "truncated"):
            assert set(result._points_to_tuples()) == small_reference
        else:
            assert set(result._points_to_tuples()) >= small_reference

    def test_deadline_skips_reorder(self, small_program):
        """An expired deadline goes straight to the terminal rung — no
        checkpoint/sift detour that cannot finish anyway."""
        result = None
        try:
            result = ContextSensitiveAnalysis(
                program=small_program,
                budget=ResourceBudget(timeout=0.0),
            ).run()
        except ReproError:
            # Acceptable: even the context-insensitive fallback needs a
            # sliver of wall-clock; a zero deadline may legitimately fail.
            return
        assert result.degraded is True
        assert "reorder" not in [a.mode for a in result.degradation.attempts]
