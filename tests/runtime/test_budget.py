"""Fault injection for the resource budget and cooperative watchdog."""

import time

import pytest

from repro.bdd import BDD
from repro.datalog import SolveStats, Solver, parse_program
from repro.runtime import (
    InvalidInputError,
    IterationLimitExceeded,
    NodeBudgetExceeded,
    ResourceBudget,
    SolverTimeout,
    Watchdog,
)

TC_SOURCE = """
.domains
N 32
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""

CHAIN = [(i, i + 1) for i in range(20)]


def tc_solver(budget=None):
    solver = Solver(parse_program(TC_SOURCE), budget=budget)
    solver.add_tuples("edge", CHAIN)
    return solver


class TestResourceBudget:
    def test_start_fixes_deadline_once(self):
        budget = ResourceBudget(timeout=100)
        budget.start()
        deadline = budget.deadline
        time.sleep(0.01)
        budget.start()
        assert budget.deadline == deadline

    def test_remaining_and_expired(self):
        assert ResourceBudget().start().remaining() is None
        assert not ResourceBudget().start().expired()
        expired = ResourceBudget(timeout=0).start()
        time.sleep(0.001)
        assert expired.expired()
        assert expired.remaining() <= 0

    def test_share_deadline_keeps_clock_changes_limits(self):
        parent = ResourceBudget(timeout=100, node_budget=10).start()
        child = parent.share_deadline(node_budget=None, max_iterations=7)
        assert child.deadline == parent.deadline
        assert child.node_budget is None
        assert child.max_iterations == 7
        # The parent keeps its own limits.
        assert parent.node_budget == 10


class TestWatchdog:
    def test_stride_scales_down_for_tiny_budgets(self):
        mgr = BDD(num_vars=4)
        assert Watchdog(ResourceBudget(node_budget=256), mgr).stride == 64
        assert Watchdog(ResourceBudget(node_budget=10 ** 9), mgr).stride == 2048
        assert Watchdog(ResourceBudget(timeout=5), mgr).stride == 2048

    def test_node_budget_raises_with_counts(self):
        mgr = BDD(num_vars=16)
        dog = Watchdog(ResourceBudget(node_budget=1), mgr)
        for v in range(8):
            mgr.var_bdd(v)
        with pytest.raises(NodeBudgetExceeded) as exc:
            dog.check()
        assert exc.value.budget == 1
        assert exc.value.node_count > 1

    def test_deadline_raises_timeout(self):
        mgr = BDD(num_vars=4)
        dog = Watchdog(ResourceBudget(timeout=0), mgr)
        time.sleep(0.001)
        with pytest.raises(SolverTimeout):
            dog.check()

    def test_manager_mk_hook_fires_mid_build(self):
        """The kernel itself interrupts a growing build, not just the
        solver loop — a runaway apply is caught while it grows."""
        mgr = BDD(num_vars=24)
        budget = ResourceBudget(node_budget=64)
        dog = Watchdog(budget, mgr)
        mgr.set_watchdog(dog.check, stride=dog.stride)
        try:
            with pytest.raises(NodeBudgetExceeded):
                # Parity of 24 variables: exponential intermediate growth.
                f = mgr.var_bdd(0)
                for v in range(1, 24):
                    f = mgr.xor(f, mgr.var_bdd(v))
                    g = mgr.or_(f, mgr.and_(mgr.var_bdd(v), f))
                    f = mgr.or_(f, g)
        finally:
            mgr.clear_watchdog()
        # Detection lags by at most one stride.
        assert mgr.node_count() <= 64 + mgr._watchdog_stride + 64


class TestSolverFaults:
    def test_deadline_mid_stratum_carries_partial_stats(self):
        solver = tc_solver(budget=ResourceBudget(timeout=0))
        time.sleep(0.001)
        with pytest.raises(SolverTimeout) as exc:
            solver.solve()
        err = exc.value
        assert isinstance(err.stats, SolveStats)
        # Rule-free input strata complete instantly; the interrupted
        # stratum is the one computing `path`.
        assert err.completed_strata is not None
        assert err.stratum and "path" in err.stratum

    def test_node_budget_mid_stratum(self):
        solver = tc_solver(budget=ResourceBudget(node_budget=8))
        with pytest.raises(NodeBudgetExceeded) as exc:
            solver.solve()
        assert exc.value.node_count > 8
        assert exc.value.stratum is not None

    def test_iteration_limit_names_rules(self):
        # The 20-edge chain needs ~20 semi-naive iterations.
        solver = tc_solver(budget=ResourceBudget(max_iterations=3))
        with pytest.raises(IterationLimitExceeded) as exc:
            solver.solve()
        err = exc.value
        assert err.iterations == 3
        assert any("path" in rule for rule in err.rules)
        assert err.stats.iterations > 0
        # The partial state is a subset of the fixpoint.
        partial = set(solver.relation("path").tuples())
        reference = tc_solver()
        reference.solve()
        assert partial <= set(reference.relation("path").tuples())

    def test_generous_budget_changes_nothing(self):
        governed = tc_solver(
            budget=ResourceBudget(timeout=60, node_budget=10 ** 7)
        )
        governed.solve()
        plain = tc_solver()
        plain.solve()
        assert set(governed.relation("path").tuples()) == set(
            plain.relation("path").tuples()
        )
        # The watchdog is disarmed after the solve.
        assert governed.manager._watchdog is None


class TestInputValidation:
    def test_out_of_range_value_names_the_fact(self):
        solver = tc_solver()
        with pytest.raises(InvalidInputError) as exc:
            solver.add_tuples("edge", [(1, 99)])
        err = exc.value
        assert err.predicate == "edge"
        assert err.attribute == "b"
        assert err.value == 99
        assert "edge" in str(err) and "99" in str(err)

    def test_non_integer_value_rejected(self):
        solver = tc_solver()
        with pytest.raises(InvalidInputError) as exc:
            solver.add_tuples("edge", [("zero", 1)])
        assert exc.value.value == "zero"

    def test_negative_value_rejected(self):
        solver = tc_solver()
        with pytest.raises(InvalidInputError):
            solver.add_tuples("edge", [(-1, 0)])

    def test_valid_tuples_still_accepted(self):
        solver = tc_solver()
        solver.add_tuples("edge", [(30, 31)])
        solver.solve()
        assert (30, 31) in set(solver.relation("path").tuples())
