"""The in-memory checkpoint API (``checkpoint_lines`` /
``load_checkpoint_lines``) and the shared atomic text writer — the
primitives the incremental fixpoint bundle is built from."""

import pytest

from repro.datalog import Solver, parse_program
from repro.runtime import CheckpointError
from repro.runtime.atomic import atomic_write_text
from repro.runtime.checkpoint import checkpoint_lines, load_checkpoint_lines

SOURCE = """
.domains
N 16
.relations
edge (a : N0, b : N1) input
path (a : N0, b : N1) output
.rules
path(x, y) :- edge(x, y).
path(x, z) :- path(x, y), edge(y, z).
"""


def build():
    solver = Solver(parse_program(SOURCE))
    solver.add_tuples("edge", [(0, 1), (1, 2), (2, 3)])
    return solver


class TestCheckpointLines:
    def test_lines_round_trip_without_a_file(self):
        first = build()
        first.solve()
        lines, meta = checkpoint_lines(first, next_stratum=2)
        assert meta["next_stratum"] == 2
        second = build()
        restored = load_checkpoint_lines(second, lines, "<memory>")
        assert restored.next_stratum == 2
        for name in first.relations:
            assert set(second.relation(name).tuples()) == set(
                first.relation(name).tuples()
            )

    def test_lines_equal_saved_file_content(self, tmp_path):
        from repro.runtime import save_checkpoint

        solver = build()
        solver.solve()
        lines, _ = checkpoint_lines(solver)
        path = tmp_path / "x.ckpt"
        save_checkpoint(solver, path)
        assert path.read_text().splitlines() == lines

    def test_corrupt_lines_are_typed(self):
        solver = build()
        solver.solve()
        lines, _ = checkpoint_lines(solver)
        broken = list(lines)
        broken[0] = "# not a checkpoint"
        with pytest.raises(CheckpointError):
            load_checkpoint_lines(build(), broken, "<memory>")

    def test_truncated_lines_are_typed(self):
        solver = build()
        solver.solve()
        lines, _ = checkpoint_lines(solver)
        with pytest.raises(CheckpointError):
            load_checkpoint_lines(build(), lines[: len(lines) // 2], "<memory>")


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        target = tmp_path / "out.txt"
        returned = atomic_write_text(target, "hello\n")
        assert returned == str(target)
        assert target.read_text() == "hello\n"

    def test_overwrites_in_place(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "a.txt", "x" * 10_000)
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]
